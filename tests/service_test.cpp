// Ensemble-service units that need no rank groups: JobSpec validation,
// the Scheduler's priority + FIFO + backoff + rank-fit policy, report
// schema self-checks, and the submit-side backpressure behavior.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"
#include "util/config.hpp"

namespace ca::service {
namespace {

JobSpec tiny_spec() {
  JobSpec s;
  s.name = "tiny";
  s.core = CoreKind::kSerial;
  s.config.nx = 16;
  s.config.ny = 12;
  s.config.nz = 4;
  s.config.M = 2;
  s.steps = 1;
  return s;
}

TEST(JobValidation, AcceptsAWellFormedSpec) {
  EXPECT_EQ(validate(tiny_spec(), 4), "");
}

TEST(JobValidation, RejectsBadSpecs) {
  auto expect_reject = [](JobSpec s, const char* why) {
    EXPECT_NE(validate(s, 4), "") << why;
  };
  {
    JobSpec s = tiny_spec();
    s.steps = 0;
    expect_reject(s, "zero steps");
  }
  {
    JobSpec s = tiny_spec();
    s.dims = {1, 2, 1};
    expect_reject(s, "serial with 2 ranks");
  }
  {
    JobSpec s = tiny_spec();
    s.core = CoreKind::kOriginal;
    s.dims = {1, 5, 1};
    expect_reject(s, "more ranks than the pool budget");
  }
  {
    JobSpec s = tiny_spec();
    s.core = CoreKind::kCA;
    s.dims = {2, 1, 1};
    expect_reject(s, "CA with px > 1");
  }
  {
    JobSpec s = tiny_spec();
    s.core = CoreKind::kCA;
    s.dims = {1, 2, 1};
    expect_reject(s, "CA with ny/py below the deep-halo bound");
  }
  {
    JobSpec s = tiny_spec();
    s.max_attempts = 0;
    expect_reject(s, "empty attempt budget");
  }
}

TEST(JobValidation, AcceptsPreemptibleCAJobs) {
  // CA jobs used to be rejected with checkpoint_every > 0 because the
  // cross-step carry (deferred smoothing, stale C products) was not
  // checkpointed.  The carry now rides in the checkpoint's v3 core-carry
  // block, so a preemptible CA spec is valid.
  JobSpec s = tiny_spec();
  s.core = CoreKind::kCA;
  s.dims = {1, 2, 1};  // ny/py = 8 >= 3M + 1
  s.config.ny = 16;
  s.checkpoint_every = 1;
  EXPECT_EQ(validate(s, 4), "");
}

TEST(SchedulerPolicy, PriorityThenFifo) {
  using Clock = std::chrono::steady_clock;
  Scheduler q(8);
  auto mk = [](int id, int priority) {
    JobSpec s = tiny_spec();
    s.priority = priority;
    auto j = std::make_shared<Job>(id, s);
    return j;
  };
  auto a = mk(0, 0), b = mk(1, 5), c = mk(2, 5), d = mk(3, 1);
  for (auto& j : {a, b, c, d}) q.push(j);
  const auto now = Clock::now();
  EXPECT_EQ(q.pop_ready(now, 8)->id, 1);  // highest priority, first in
  EXPECT_EQ(q.pop_ready(now, 8)->id, 2);  // same priority, FIFO
  EXPECT_EQ(q.pop_ready(now, 8)->id, 3);
  EXPECT_EQ(q.pop_ready(now, 8)->id, 0);
  EXPECT_EQ(q.pop_ready(now, 8), nullptr);
}

TEST(SchedulerPolicy, RankFitAndBackoffGate) {
  using namespace std::chrono_literals;
  using Clock = std::chrono::steady_clock;
  Scheduler q(8);
  JobSpec wide = tiny_spec();
  wide.core = CoreKind::kOriginal;
  wide.dims = {1, 4, 1};
  wide.priority = 9;
  auto big = std::make_shared<Job>(0, wide);
  auto small = std::make_shared<Job>(1, tiny_spec());
  q.push(big);
  q.push(small);
  const auto now = Clock::now();
  // Only 2 ranks free: the 4-rank job is skipped despite its priority.
  EXPECT_EQ(q.pop_ready(now, 2)->id, 1);
  // ...but it is what the pool should make room for.
  q.push(small);
  EXPECT_EQ(q.peek_ready(now)->id, 0);

  small->ready_at = now + 1h;  // backoff-gated
  EXPECT_EQ(q.pop_ready(now, 2), nullptr);
  EXPECT_EQ(q.next_ready_after(now), small->ready_at);
  EXPECT_NE(q.pop_ready(now + 2h, 2), nullptr);
}

TEST(SchedulerPolicy, BackfillPastTheHeadJobIsBounded) {
  // A wide high-priority job that never fits the free ranks must not be
  // starved by an endless stream of small backfill jobs grabbing the
  // ranks preemption frees for it: after kMaxBypasses backfills the
  // queue holds ranks until the head job fits.
  using Clock = std::chrono::steady_clock;
  Scheduler q(64);
  JobSpec wide = tiny_spec();
  wide.core = CoreKind::kOriginal;
  wide.dims = {1, 4, 1};
  wide.priority = 9;
  auto big = std::make_shared<Job>(0, wide);
  q.push(big);
  const auto now = Clock::now();
  int id = 1;
  for (int i = 0; i < Scheduler::kMaxBypasses; ++i) {
    q.push(std::make_shared<Job>(id++, tiny_spec()));
    ASSERT_NE(q.pop_ready(now, 2), nullptr)
        << "backfill below the bypass bound must keep the pool busy";
  }
  // Bypass budget spent: a fitting small job queues, but the ranks are
  // now reserved for the head job.
  q.push(std::make_shared<Job>(id++, tiny_spec()));
  EXPECT_EQ(q.pop_ready(now, 2), nullptr)
      << "backfill past the bypass bound starves the head job";
  // Once enough ranks free up, the head job pops and its budget resets.
  auto popped = q.pop_ready(now, 4);
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->id, 0);
  EXPECT_EQ(popped->bypassed, 0);
  // The queued small job is eligible again now that the head is gone.
  EXPECT_NE(q.pop_ready(now, 2), nullptr);
}

TEST(SchedulerPolicy, AgingLiftsAStarvedJobPastFreshPriority) {
  // Anti-starvation: with aging on, a low-priority job that has waited
  // long enough must outrank a fresh high-priority submission; with aging
  // off the static order stands.
  using namespace std::chrono_literals;
  using Clock = std::chrono::steady_clock;
  Scheduler q(8);
  q.set_aging_rate(1.0);  // 1 priority point per waiting second
  const auto now = Clock::now();

  JobSpec lo = tiny_spec();
  lo.priority = 0;
  auto starved = std::make_shared<Job>(0, lo);
  starved->last_queued_at = now - 10s;  // boost 10 > priority gap 5

  JobSpec hi = tiny_spec();
  hi.priority = 5;
  auto fresh = std::make_shared<Job>(1, hi);
  fresh->last_queued_at = now;

  EXPECT_GT(q.effective_priority(*starved, now),
            q.effective_priority(*fresh, now));
  q.push(starved);
  q.push(fresh);
  EXPECT_EQ(q.pop_ready(now, 8)->id, 0) << "the starved job must run first";
  EXPECT_EQ(q.pop_ready(now, 8)->id, 1);

  // Aging off: the same wait gap no longer reorders anything.
  Scheduler strict(8);
  auto starved2 = std::make_shared<Job>(0, lo);
  starved2->last_queued_at = now - 10s;
  auto fresh2 = std::make_shared<Job>(1, hi);
  fresh2->last_queued_at = now;
  strict.push(starved2);
  strict.push(fresh2);
  EXPECT_EQ(strict.pop_ready(now, 8)->id, 1);

  // The shutdown drain passes TimePoint::max() as `now`; the boost must
  // saturate to a finite value (order degrades to FIFO), not go infinite.
  const double drained =
      q.effective_priority(*fresh, Clock::time_point::max());
  EXPECT_TRUE(std::isfinite(drained));
}

// Clears one CA_AGCM_* var for the enclosing scope and restores it on
// exit, so an outer environment (the CI replication leg exports
// CA_AGCM_SERVICE_REPLICATE / _DELTA_CHAIN) cannot shadow the file
// entries under test.
struct EnvGuard {
  std::string name;
  std::optional<std::string> old;
  explicit EnvGuard(const char* n) : name(n) {
    if (const char* v = std::getenv(n)) old = v;
    ::unsetenv(n);
  }
  ~EnvGuard() {
    if (old.has_value())
      ::setenv(name.c_str(), old->c_str(), 1);
    else
      ::unsetenv(name.c_str());
  }
};

TEST(PoolOptionsConfig, ReadsTheServiceKeys) {
  EnvGuard g1("CA_AGCM_SERVICE_REPLICATE");
  EnvGuard g2("CA_AGCM_SERVICE_DELTA_CHAIN");
  EnvGuard g3("CA_AGCM_SERVICE_DELTA_BLOCK_BYTES");
  const auto cfg = util::Config::from_text(
      "service.slots = 3\n"
      "service.rank_budget = 8\n"
      "service.queue_capacity = 5\n"
      "service.checkpoint_dir = /tmp/ca_cfg_test\n"
      "service.max_rank_strikes = 2\n"
      "service.quarantine_seconds = 1.5\n"
      "service.aging_rate = 0.25\n"
      "service.replicate = true\n"
      "service.delta_chain = 6\n"
      "service.delta_block_bytes = 8192\n");
  const PoolOptions o = PoolOptions::from_config(cfg);
  EXPECT_EQ(o.slots, 3);
  EXPECT_EQ(o.rank_budget, 8);
  EXPECT_EQ(o.queue_capacity, 5u);
  EXPECT_EQ(o.checkpoint_dir, "/tmp/ca_cfg_test");
  EXPECT_EQ(o.max_rank_strikes, 2);
  EXPECT_DOUBLE_EQ(o.quarantine_seconds, 1.5);
  EXPECT_DOUBLE_EQ(o.aging_rate, 0.25);
  EXPECT_TRUE(o.replicate);
  EXPECT_EQ(o.delta_chain, 6);
  EXPECT_EQ(o.delta_block_bytes, 8192u);
  // Defaults hold when nothing is set.
  const PoolOptions d = PoolOptions::from_config(util::Config{});
  EXPECT_EQ(d.max_rank_strikes, PoolOptions{}.max_rank_strikes);
  EXPECT_DOUBLE_EQ(d.aging_rate, 0.0);
  EXPECT_FALSE(d.replicate);
  EXPECT_EQ(d.delta_chain, 0);
  EXPECT_EQ(d.delta_block_bytes, 4096u);
  // The CI replication leg turns the feature on via env, which wins
  // over stored entries (the rule util::Config::env_name documents).
  ::setenv("CA_AGCM_SERVICE_REPLICATE", "1", 1);
  ::setenv("CA_AGCM_SERVICE_DELTA_CHAIN", "9", 1);
  const PoolOptions e = PoolOptions::from_config(cfg);
  EXPECT_TRUE(e.replicate);
  EXPECT_EQ(e.delta_chain, 9) << "env must shadow the stored entry";
}

TEST(Service, SweepsStaleTmpCheckpointsAtStartup) {
  // A crash between a checkpoint's tmp-write and its rename leaves a
  // `*.ckpt.tmp` behind; the pool must sweep OLD ones at startup and
  // leave real checkpoints alone.  A FRESH tmp may be a sibling pool's
  // atomic write in flight (two services can share a checkpoint_dir —
  // the default is "."), so the sweep is age-gated and must keep it.
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "ca_service_tmp_sweep";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto stale = dir / "ca_service_job0.rank0.ckpt.tmp";
  const auto fresh = dir / "ca_service_job1.rank0.ckpt.tmp";
  const auto kept = dir / "ca_service_job0.rank0.ckpt";
  { std::ofstream(stale) << "partial"; }
  { std::ofstream(fresh) << "in-flight"; }
  { std::ofstream(kept) << "real"; }
  fs::last_write_time(
      stale, fs::file_time_type::clock::now() - std::chrono::hours(1));
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.checkpoint_dir = dir.string();
  EnsembleService svc(opt);
  EXPECT_FALSE(fs::exists(stale)) << "stale tmp checkpoint not swept";
  EXPECT_TRUE(fs::exists(fresh))
      << "a fresh tmp (possibly another pool's in-flight write) was swept";
  EXPECT_TRUE(fs::exists(kept)) << "a completed checkpoint was removed";
  fs::remove_all(dir);
}

TEST(Report, LegacyV1ReportsStillValidate) {
  // Archived v1 reports have no health section and no per-job
  // rank-recovery fields; they must keep validating, while a v2-tagged
  // report missing its health section must not.
  const char* v1 = R"({
    "schema": "ca-agcm/service-report/v1",
    "service": {"slots": 1, "rank_budget": 2, "queue_capacity": 4,
                "wall_seconds": 1.0, "jobs_submitted": 1,
                "jobs_completed": 1, "jobs_failed": 0,
                "max_concurrent_jobs": 1, "max_ranks_in_flight": 2,
                "preemptions": 0, "retries": 0, "rank_seconds_busy": 0.5,
                "utilization": 0.25},
    "jobs": [{"id": 0, "name": "j", "core": "serial", "state": "completed",
              "steps": 2, "steps_done": 2, "attempts": 1, "preemptions": 0,
              "queue_wait_seconds": 0.0, "run_seconds": 0.5,
              "steps_per_second": 4.0, "comm": {}, "faults": {}}]
  })";
  EXPECT_EQ(validate_report(util::Json::parse(v1)), "");

  std::string v2_missing_health = v1;
  v2_missing_health.replace(v2_missing_health.find("/v1"), 3, "/v2");
  EXPECT_NE(validate_report(util::Json::parse(v2_missing_health)), "")
      << "a v2 report without the health section must be rejected";
}

TEST(Service, RejectsInvalidSubmit) {
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec bad = tiny_spec();
  bad.steps = -1;
  EXPECT_THROW(svc.submit(bad), std::invalid_argument);
  EXPECT_THROW(svc.wait(123), std::out_of_range);
}

TEST(Service, ReportValidatesAgainstItsSchema) {
  ServiceOptions opt;
  opt.slots = 2;
  opt.rank_budget = 2;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec s = tiny_spec();
  s.steps = 2;
  s.deadline_seconds = 3600.0;
  const int a = svc.submit(s);
  const int b = svc.submit(s);
  svc.drain();
  EXPECT_EQ(svc.state(a), JobState::kCompleted);
  EXPECT_EQ(svc.state(b), JobState::kCompleted);

  const util::Json doc = svc.report();
  EXPECT_EQ(validate_report(doc), "");
  // The report must survive a serialize/parse round trip unchanged in
  // validity (what the bench writes to disk and re-checks).
  EXPECT_EQ(validate_report(util::Json::parse(doc.dump(2))), "");
  const util::Json* svc_obj = doc.find("service");
  ASSERT_NE(svc_obj, nullptr);
  EXPECT_EQ(svc_obj->find("jobs_completed")->as_double(), 2.0);
  EXPECT_EQ(svc_obj->find("jobs_failed")->as_double(), 0.0);

  // Both tiny jobs met their hour-long deadline.
  for (const auto& e : doc.find("jobs")->items())
    EXPECT_FALSE(e.find("deadline_missed")->as_bool());
}

TEST(Service, CreatesTheCheckpointDirectory) {
  // A missing checkpoint directory must not make preemptible jobs burn
  // their attempt budget on fopen failures: the pool materializes it.
  const auto root =
      std::filesystem::temp_directory_path() / "ca_service_ckpt_dir";
  std::filesystem::remove_all(root);
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.checkpoint_dir = (root / "nested").string();
  EnsembleService svc(opt);
  EXPECT_TRUE(std::filesystem::is_directory(root / "nested"));
  JobSpec s = tiny_spec();
  s.steps = 2;
  s.checkpoint_every = 1;
  const int id = svc.submit(s);
  svc.drain();
  EXPECT_EQ(svc.state(id), JobState::kCompleted);
  std::filesystem::remove_all(root);
}

TEST(Service, ResultTakesTheFinalStateExactlyOnce) {
  // result() moves the gathered final state out of the job record; a
  // second call used to return an EMPTY state silently, which a caller
  // could then "successfully" compare against.  Now the repeat take is
  // flagged explicitly.
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec s = tiny_spec();
  s.steps = 2;
  const int id = svc.submit(s);
  svc.wait(id);

  const JobResult first = svc.result(id);
  ASSERT_EQ(first.state, JobState::kCompleted) << first.error;
  EXPECT_FALSE(first.state_already_taken);
  EXPECT_GT(first.final_state.interior().volume(), 0)
      << "first take must carry the gathered state";

  const JobResult second = svc.result(id);
  EXPECT_EQ(second.state, JobState::kCompleted);
  EXPECT_TRUE(second.state_already_taken)
      << "repeat take must be flagged, not silently empty";
  EXPECT_EQ(second.final_state.interior().volume(), 0);
  // Non-state fields stay reportable on every call.
  EXPECT_EQ(second.steps_done, first.steps_done);
}

TEST(Service, NonBlockingSubmitBackpressure) {
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.queue_capacity = 1;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec s = tiny_spec();
  s.steps = 200;  // long enough to keep the single slot busy
  // Occupy the slot, fill the one queue seat, then the queue must refuse.
  const int first = svc.submit(s, /*block=*/false);
  ASSERT_GE(first, 0);
  const auto start = std::chrono::steady_clock::now();
  while (svc.state(first) == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(30));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const int queued = svc.submit(s, /*block=*/false);
  ASSERT_GE(queued, 0) << "an empty queue must accept";
  EXPECT_EQ(svc.submit(s, /*block=*/false), -1)
      << "a full bounded queue must refuse a non-blocking submit";
  svc.drain();
  EXPECT_EQ(svc.state(first), JobState::kCompleted);
  EXPECT_EQ(svc.state(queued), JobState::kCompleted);
}

}  // namespace
}  // namespace ca::service
