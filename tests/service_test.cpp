// Ensemble-service units that need no rank groups: JobSpec validation,
// the Scheduler's priority + FIFO + backoff + rank-fit policy, report
// schema self-checks, and the submit-side backpressure behavior.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "service/job.hpp"
#include "service/scheduler.hpp"
#include "service/service.hpp"

namespace ca::service {
namespace {

JobSpec tiny_spec() {
  JobSpec s;
  s.name = "tiny";
  s.core = CoreKind::kSerial;
  s.config.nx = 16;
  s.config.ny = 12;
  s.config.nz = 4;
  s.config.M = 2;
  s.steps = 1;
  return s;
}

TEST(JobValidation, AcceptsAWellFormedSpec) {
  EXPECT_EQ(validate(tiny_spec(), 4), "");
}

TEST(JobValidation, RejectsBadSpecs) {
  auto expect_reject = [](JobSpec s, const char* why) {
    EXPECT_NE(validate(s, 4), "") << why;
  };
  {
    JobSpec s = tiny_spec();
    s.steps = 0;
    expect_reject(s, "zero steps");
  }
  {
    JobSpec s = tiny_spec();
    s.dims = {1, 2, 1};
    expect_reject(s, "serial with 2 ranks");
  }
  {
    JobSpec s = tiny_spec();
    s.core = CoreKind::kOriginal;
    s.dims = {1, 5, 1};
    expect_reject(s, "more ranks than the pool budget");
  }
  {
    JobSpec s = tiny_spec();
    s.core = CoreKind::kCA;
    s.dims = {2, 1, 1};
    expect_reject(s, "CA with px > 1");
  }
  {
    JobSpec s = tiny_spec();
    s.core = CoreKind::kCA;
    s.dims = {1, 2, 1};
    expect_reject(s, "CA with ny/py below the deep-halo bound");
  }
  {
    JobSpec s = tiny_spec();
    s.max_attempts = 0;
    expect_reject(s, "empty attempt budget");
  }
}

TEST(JobValidation, AcceptsPreemptibleCAJobs) {
  // CA jobs used to be rejected with checkpoint_every > 0 because the
  // cross-step carry (deferred smoothing, stale C products) was not
  // checkpointed.  The carry now rides in the checkpoint's v3 core-carry
  // block, so a preemptible CA spec is valid.
  JobSpec s = tiny_spec();
  s.core = CoreKind::kCA;
  s.dims = {1, 2, 1};  // ny/py = 8 >= 3M + 1
  s.config.ny = 16;
  s.checkpoint_every = 1;
  EXPECT_EQ(validate(s, 4), "");
}

TEST(SchedulerPolicy, PriorityThenFifo) {
  using Clock = std::chrono::steady_clock;
  Scheduler q(8);
  auto mk = [](int id, int priority) {
    JobSpec s = tiny_spec();
    s.priority = priority;
    auto j = std::make_shared<Job>(id, s);
    return j;
  };
  auto a = mk(0, 0), b = mk(1, 5), c = mk(2, 5), d = mk(3, 1);
  for (auto& j : {a, b, c, d}) q.push(j);
  const auto now = Clock::now();
  EXPECT_EQ(q.pop_ready(now, 8)->id, 1);  // highest priority, first in
  EXPECT_EQ(q.pop_ready(now, 8)->id, 2);  // same priority, FIFO
  EXPECT_EQ(q.pop_ready(now, 8)->id, 3);
  EXPECT_EQ(q.pop_ready(now, 8)->id, 0);
  EXPECT_EQ(q.pop_ready(now, 8), nullptr);
}

TEST(SchedulerPolicy, RankFitAndBackoffGate) {
  using namespace std::chrono_literals;
  using Clock = std::chrono::steady_clock;
  Scheduler q(8);
  JobSpec wide = tiny_spec();
  wide.core = CoreKind::kOriginal;
  wide.dims = {1, 4, 1};
  wide.priority = 9;
  auto big = std::make_shared<Job>(0, wide);
  auto small = std::make_shared<Job>(1, tiny_spec());
  q.push(big);
  q.push(small);
  const auto now = Clock::now();
  // Only 2 ranks free: the 4-rank job is skipped despite its priority.
  EXPECT_EQ(q.pop_ready(now, 2)->id, 1);
  // ...but it is what the pool should make room for.
  q.push(small);
  EXPECT_EQ(q.peek_ready(now)->id, 0);

  small->ready_at = now + 1h;  // backoff-gated
  EXPECT_EQ(q.pop_ready(now, 2), nullptr);
  EXPECT_EQ(q.next_ready_after(now), small->ready_at);
  EXPECT_NE(q.pop_ready(now + 2h, 2), nullptr);
}

TEST(SchedulerPolicy, BackfillPastTheHeadJobIsBounded) {
  // A wide high-priority job that never fits the free ranks must not be
  // starved by an endless stream of small backfill jobs grabbing the
  // ranks preemption frees for it: after kMaxBypasses backfills the
  // queue holds ranks until the head job fits.
  using Clock = std::chrono::steady_clock;
  Scheduler q(64);
  JobSpec wide = tiny_spec();
  wide.core = CoreKind::kOriginal;
  wide.dims = {1, 4, 1};
  wide.priority = 9;
  auto big = std::make_shared<Job>(0, wide);
  q.push(big);
  const auto now = Clock::now();
  int id = 1;
  for (int i = 0; i < Scheduler::kMaxBypasses; ++i) {
    q.push(std::make_shared<Job>(id++, tiny_spec()));
    ASSERT_NE(q.pop_ready(now, 2), nullptr)
        << "backfill below the bypass bound must keep the pool busy";
  }
  // Bypass budget spent: a fitting small job queues, but the ranks are
  // now reserved for the head job.
  q.push(std::make_shared<Job>(id++, tiny_spec()));
  EXPECT_EQ(q.pop_ready(now, 2), nullptr)
      << "backfill past the bypass bound starves the head job";
  // Once enough ranks free up, the head job pops and its budget resets.
  auto popped = q.pop_ready(now, 4);
  ASSERT_NE(popped, nullptr);
  EXPECT_EQ(popped->id, 0);
  EXPECT_EQ(popped->bypassed, 0);
  // The queued small job is eligible again now that the head is gone.
  EXPECT_NE(q.pop_ready(now, 2), nullptr);
}

TEST(Service, RejectsInvalidSubmit) {
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec bad = tiny_spec();
  bad.steps = -1;
  EXPECT_THROW(svc.submit(bad), std::invalid_argument);
  EXPECT_THROW(svc.wait(123), std::out_of_range);
}

TEST(Service, ReportValidatesAgainstItsSchema) {
  ServiceOptions opt;
  opt.slots = 2;
  opt.rank_budget = 2;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec s = tiny_spec();
  s.steps = 2;
  s.deadline_seconds = 3600.0;
  const int a = svc.submit(s);
  const int b = svc.submit(s);
  svc.drain();
  EXPECT_EQ(svc.state(a), JobState::kCompleted);
  EXPECT_EQ(svc.state(b), JobState::kCompleted);

  const util::Json doc = svc.report();
  EXPECT_EQ(validate_report(doc), "");
  // The report must survive a serialize/parse round trip unchanged in
  // validity (what the bench writes to disk and re-checks).
  EXPECT_EQ(validate_report(util::Json::parse(doc.dump(2))), "");
  const util::Json* svc_obj = doc.find("service");
  ASSERT_NE(svc_obj, nullptr);
  EXPECT_EQ(svc_obj->find("jobs_completed")->as_double(), 2.0);
  EXPECT_EQ(svc_obj->find("jobs_failed")->as_double(), 0.0);

  // Both tiny jobs met their hour-long deadline.
  for (const auto& e : doc.find("jobs")->items())
    EXPECT_FALSE(e.find("deadline_missed")->as_bool());
}

TEST(Service, CreatesTheCheckpointDirectory) {
  // A missing checkpoint directory must not make preemptible jobs burn
  // their attempt budget on fopen failures: the pool materializes it.
  const auto root =
      std::filesystem::temp_directory_path() / "ca_service_ckpt_dir";
  std::filesystem::remove_all(root);
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.checkpoint_dir = (root / "nested").string();
  EnsembleService svc(opt);
  EXPECT_TRUE(std::filesystem::is_directory(root / "nested"));
  JobSpec s = tiny_spec();
  s.steps = 2;
  s.checkpoint_every = 1;
  const int id = svc.submit(s);
  svc.drain();
  EXPECT_EQ(svc.state(id), JobState::kCompleted);
  std::filesystem::remove_all(root);
}

TEST(Service, ResultTakesTheFinalStateExactlyOnce) {
  // result() moves the gathered final state out of the job record; a
  // second call used to return an EMPTY state silently, which a caller
  // could then "successfully" compare against.  Now the repeat take is
  // flagged explicitly.
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec s = tiny_spec();
  s.steps = 2;
  const int id = svc.submit(s);
  svc.wait(id);

  const JobResult first = svc.result(id);
  ASSERT_EQ(first.state, JobState::kCompleted) << first.error;
  EXPECT_FALSE(first.state_already_taken);
  EXPECT_GT(first.final_state.interior().volume(), 0)
      << "first take must carry the gathered state";

  const JobResult second = svc.result(id);
  EXPECT_EQ(second.state, JobState::kCompleted);
  EXPECT_TRUE(second.state_already_taken)
      << "repeat take must be flagged, not silently empty";
  EXPECT_EQ(second.final_state.interior().volume(), 0);
  // Non-state fields stay reportable on every call.
  EXPECT_EQ(second.steps_done, first.steps_done);
}

TEST(Service, NonBlockingSubmitBackpressure) {
  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.queue_capacity = 1;
  opt.checkpoint_dir =
      std::filesystem::temp_directory_path().string();
  EnsembleService svc(opt);
  JobSpec s = tiny_spec();
  s.steps = 200;  // long enough to keep the single slot busy
  // Occupy the slot, fill the one queue seat, then the queue must refuse.
  const int first = svc.submit(s, /*block=*/false);
  ASSERT_GE(first, 0);
  const auto start = std::chrono::steady_clock::now();
  while (svc.state(first) == JobState::kQueued) {
    ASSERT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(30));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const int queued = svc.submit(s, /*block=*/false);
  ASSERT_GE(queued, 0) << "an empty queue must accept";
  EXPECT_EQ(svc.submit(s, /*block=*/false), -1)
      << "a full bounded queue must refuse a non-blocking submit";
  svc.drain();
  EXPECT_EQ(svc.state(first), JobState::kCompleted);
  EXPECT_EQ(svc.state(queued), JobState::kCompleted);
}

}  // namespace
}  // namespace ca::service
