// Observability subsystem: the metrics registry's instrument identity and
// JSON snapshot, span/ring semantics of the Tracer (nesting, bounded
// flight ring, off-switch), the merged multi-rank Chrome trace export,
// flight-recorder dumps, and the obs-off bitwise guarantee (tracing a run
// must not change a single bit of the model state).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/campaign.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "state/state.hpp"
#include "util/json.hpp"

namespace ca::obs {
namespace {

std::string temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("ca_agcm_obs_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// --- metrics registry -------------------------------------------------------

TEST(Metrics, InstrumentIdentityAndLabels) {
  MetricsRegistry reg;
  Counter& a = reg.counter("comm.messages");
  Counter& b = reg.counter("comm.messages");
  EXPECT_EQ(&a, &b) << "same (name, labels) must return the same instrument";
  // Label order must not matter at registration.
  Counter& r0 = reg.counter("comm.bytes", {{"rank", "0"}, {"dir", "tx"}});
  Counter& r0b = reg.counter("comm.bytes", {{"dir", "tx"}, {"rank", "0"}});
  Counter& r1 = reg.counter("comm.bytes", {{"rank", "1"}, {"dir", "tx"}});
  EXPECT_EQ(&r0, &r0b);
  EXPECT_NE(&r0, &r1) << "distinct labels must be distinct instruments";
  a.add(3);
  a.add();
  EXPECT_EQ(a.value(), 4u);

  Gauge& g = reg.gauge("service.queue_depth");
  g.set(5.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(Metrics, HistogramBucketsAndValidation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("wait", {0.01, 0.1, 1.0});
  h.observe(0.005);  // <= 0.01
  h.observe(0.05);   // <= 0.1
  h.observe(0.05);
  h.observe(0.5);    // <= 1.0
  h.observe(50.0);   // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_NEAR(h.sum(), 50.605, 1e-12);
  // First registration wins: re-registering with different bounds keeps
  // the original instrument.
  Histogram& again = reg.histogram("wait", {1.0, 2.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.upper_bounds().size(), 3u);
  // Malformed bounds are rejected loudly.
  EXPECT_THROW(reg.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dup", {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("desc", {2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, SnapshotShape) {
  MetricsRegistry reg;
  reg.counter("c", {{"k", "v"}}).add(7);
  reg.gauge("g").set(2.5);
  reg.histogram("h", {1.0}).observe(0.5);
  const util::Json doc = reg.snapshot();
  ASSERT_TRUE(doc.is_object());
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const util::Json* arr = doc.find(key);
    ASSERT_NE(arr, nullptr) << key;
    ASSERT_TRUE(arr->is_array()) << key;
    ASSERT_EQ(arr->items().size(), 1u) << key;
  }
  const util::Json& c = doc.find("counters")->items()[0];
  EXPECT_EQ(c.find("name")->as_string(), "c");
  EXPECT_EQ(c.find("labels")->find("k")->as_string(), "v");
  EXPECT_DOUBLE_EQ(c.find("value")->as_double(), 7.0);
  const util::Json& h = doc.find("histograms")->items()[0];
  // One finite bucket plus the +Inf overflow bucket.
  ASSERT_EQ(h.find("buckets")->items().size(), 2u);
  EXPECT_DOUBLE_EQ(h.find("buckets")->items()[0].find("count")->as_double(),
                   1.0);
  EXPECT_DOUBLE_EQ(h.find("count")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(h.find("sum")->as_double(), 0.5);
}

TEST(Metrics, PrometheusExpositionGoldenFormat) {
  // Golden test of the text exposition: names sanitized, one TYPE line
  // per family, labels rendered sorted, histogram buckets CUMULATIVE
  // with the +Inf bucket equal to _count.
  MetricsRegistry reg;
  reg.counter("service.jobs_completed").add(3);
  reg.counter("comm.msgs", {{"phase", "halo"}}).add(12);
  reg.gauge("service.queue-depth").set(2);
  Histogram& h = reg.histogram("step.seconds", {0.01, 0.1, 1.0},
                               {{"core", "ca"}});
  h.observe(0.005);
  h.observe(0.05);
  h.observe(0.05);
  h.observe(0.5);
  h.observe(50.0);  // overflow

  const std::string got = to_prometheus(reg.snapshot());
  const std::string want =
      "# TYPE service_jobs_completed counter\n"
      "service_jobs_completed 3\n"
      "# TYPE comm_msgs counter\n"
      "comm_msgs{phase=\"halo\"} 12\n"
      "# TYPE service_queue_depth gauge\n"
      "service_queue_depth 2\n"
      "# TYPE step_seconds histogram\n"
      "step_seconds_bucket{core=\"ca\",le=\"0.01\"} 1\n"
      "step_seconds_bucket{core=\"ca\",le=\"0.1\"} 3\n"
      "step_seconds_bucket{core=\"ca\",le=\"1\"} 4\n"
      "step_seconds_bucket{core=\"ca\",le=\"+Inf\"} 5\n"
      "step_seconds_sum{core=\"ca\"} 50.605\n"
      "step_seconds_count{core=\"ca\"} 5\n";
  EXPECT_EQ(got, want);
}

TEST(Metrics, PrometheusExpositionMergesFamiliesAndEscapes) {
  // Same name, different labels: ONE TYPE line, two sample lines.  Label
  // values with quotes/backslashes/newlines are escaped per the spec.
  MetricsRegistry reg;
  reg.counter("retries", {{"job", "a"}}).add(1);
  reg.counter("retries", {{"job", "b"}}).add(2);
  reg.gauge("weird", {{"msg", "say \"hi\"\\\n"}}).set(1.5);
  const std::string got = to_prometheus(reg.snapshot());
  EXPECT_EQ(got,
            "# TYPE retries counter\n"
            "retries{job=\"a\"} 1\n"
            "retries{job=\"b\"} 2\n"
            "# TYPE weird gauge\n"
            "weird{msg=\"say \\\"hi\\\"\\\\\\n\"} 1.5\n");
  // An empty registry renders an empty document, not a parse hazard.
  EXPECT_EQ(to_prometheus(MetricsRegistry{}.snapshot()), "");
}

// --- tracer / ring ----------------------------------------------------------

TraceOptions ring_opts(int events = 64) {
  TraceOptions o;
  o.trace = false;
  o.dump_on_failure = true;  // arm the ring without a collector
  o.ring_events = events;
  return o;
}

TEST(Tracer, SpansNestAndRecordOnFinish) {
  Tracer t;
  t.configure(ring_opts(), /*tid=*/0);
  {
    Span outer = t.span("outer", "core");
    {
      Span inner = t.span("inner", "compute");
    }  // inner finishes (records) first
  }
  const auto ring = t.ring_snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_STREQ(ring[0].name, "inner");
  EXPECT_STREQ(ring[1].name, "outer");
  // Proper nesting: the inner interval lies within the outer one.
  EXPECT_GE(ring[0].ts_us, ring[1].ts_us);
  EXPECT_LE(ring[0].ts_us + ring[0].dur_us,
            ring[1].ts_us + ring[1].dur_us + 1e-6);
}

TEST(Tracer, FlightRingIsBoundedAndCountsDrops) {
  Tracer t;
  t.configure(ring_opts(/*events=*/8), /*tid=*/3);
  for (int i = 0; i < 20; ++i) t.instant("beat", "comm");
  EXPECT_EQ(t.ring_snapshot().size(), 8u);
  EXPECT_EQ(t.recorded(), 20u);
  EXPECT_EQ(t.dropped(), 12u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;
  TraceOptions off;
  off.trace = false;
  off.dump_on_failure = false;
  t.configure(off, /*tid=*/0);
  EXPECT_FALSE(t.recording());
  Span s = t.span("step", "core");
  EXPECT_FALSE(s.active());
  s.finish();
  t.instant("beat");
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.ring_snapshot().empty());
  // The off-switch also suppresses the dump file.
  EXPECT_EQ(t.dump_flight("should not be written"), "");
}

TEST(Tracer, FlightDumpWritesReadablePostmortem) {
  const std::string dir = temp_dir("dump");
  Tracer t;
  TraceOptions o = ring_opts();
  o.dump_dir = dir;
  t.configure(o, /*tid=*/2);
  { Span s = t.span("exchange_wait", "exchange"); }
  t.instant("peer_dead", "comm", "rank 1 silent past heartbeat");
  const std::string path = t.dump_flight("PeerDeadError: rank 1");
  EXPECT_EQ(path, dir + "/obs_dump_rank2.json");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const util::Json doc = util::Json::parse(ss.str());
  EXPECT_EQ(doc.find("schema")->as_string(), "ca-agcm/obs-flight/v1");
  EXPECT_EQ(doc.find("rank")->as_double(), 2.0);
  EXPECT_EQ(doc.find("reason")->as_string(), "PeerDeadError: rank 1");
  const util::Json* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 2u);
  EXPECT_EQ(events->items()[0].find("name")->as_string(), "exchange_wait");
  EXPECT_EQ(events->items()[1].find("name")->as_string(), "peer_dead");
  EXPECT_EQ(events->items()[1].find("detail")->as_string(),
            "rank 1 silent past heartbeat");
}

TEST(Tracer, SecondIncidentNeverClobbersTheFirstDump) {
  // Two incidents in one run — or two jobs whose rank ids collide — used
  // to share obs_dump_rank<r>.json, the later truncating the earlier
  // postmortem.  The first dump keeps the legacy name; later ones get a
  // monotonic .incident<seq> suffix.  The sequence is probe-based, so it
  // survives Tracer reconstruction across attempts (each attempt builds
  // fresh tracers whose in-memory counters restart).
  const std::string dir = temp_dir("dump_noclobber");
  TraceOptions o = ring_opts();
  o.dump_dir = dir;

  Tracer first;
  first.configure(o, /*tid=*/3);
  first.instant("peer_dead", "comm", "incident one");
  const std::string p0 = first.dump_flight("first incident");
  EXPECT_EQ(p0, dir + "/obs_dump_rank3.json");

  Tracer second;  // a fresh tracer, as a retried attempt would build
  second.configure(o, /*tid=*/3);
  second.instant("peer_dead", "comm", "incident two");
  const std::string p1 = second.dump_flight("second incident");
  EXPECT_EQ(p1, dir + "/obs_dump_rank3.incident1.json");
  const std::string p2 = second.dump_flight("third incident");
  EXPECT_EQ(p2, dir + "/obs_dump_rank3.incident2.json");

  // The first postmortem is intact, and each dump kept its own reason.
  auto reason_of = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return util::Json::parse(ss.str()).find("reason")->as_string();
  };
  EXPECT_EQ(reason_of(p0), "first incident");
  EXPECT_EQ(reason_of(p1), "second incident");
  EXPECT_EQ(reason_of(p2), "third incident");
}

// --- merged multi-rank export ----------------------------------------------

core::DycoreConfig small_cfg() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 1;
  return c;
}

TEST(TraceExport, MultiRankRunMergesIntoValidChromeTrace) {
  TraceCollector collector;
  comm::RunOptions opts;
  opts.obs.trace = true;
  opts.obs.ring_events = 32;  // force mid-run spills to the collector
  opts.trace_sink = &collector;
  opts.trace_pid = 7;
  comm::Runtime::run(2, opts, [&](comm::Context& ctx) {
    core::OriginalCore core(small_cfg(), ctx, core::DecompScheme::kYZ,
                            {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    core::CampaignOptions opt;
    opt.steps = 2;
    // The diagnostics reduction is the run's collective: its span proves
    // the comm layer's phase instrumentation reaches the export.
    opt.diag_every = 1;
    opt.on_diagnostics = [](int, const core::GlobalDiag&) {};
    core::run_campaign(core, &ctx, xi, opt);
  });
  ASSERT_GT(collector.event_count(), 0u);
  const util::Json doc = collector.chrome_trace();
  EXPECT_EQ(validate_chrome_trace(doc), "");

  // Both ranks contribute under the job pid, and the core's span
  // vocabulary is present on each rank's timeline.
  std::set<int> tids;
  std::set<std::string> names0;
  for (const util::Json& ev : doc.find("traceEvents")->items()) {
    if (ev.find("ph")->as_string() == "M") continue;
    EXPECT_DOUBLE_EQ(ev.find("pid")->as_double(), 7.0);
    const int tid = static_cast<int>(ev.find("tid")->as_double());
    tids.insert(tid);
    if (tid == 0) names0.insert(ev.find("name")->as_string());
  }
  EXPECT_EQ(tids, (std::set<int>{0, 1}));
  for (const char* expected : {"campaign", "step", "exchange_post",
                               "exchange_wait", "collective"})
    EXPECT_TRUE(names0.count(expected))
        << "rank 0 timeline lacks span '" << expected << "'";

  // The export round-trips through its own validator from disk too.
  const std::string path = temp_dir("export") + "/trace.json";
  ASSERT_TRUE(collector.write(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(validate_chrome_trace(util::Json::parse(ss.str())), "");
}

// --- obs off = seed behavior ------------------------------------------------

TEST(TraceExport, TracingDoesNotChangeModelStateBitwise) {
  // The whole subsystem must be a pure observer: a traced run and an
  // obs-disabled run of the same campaign produce bit-identical states.
  auto run = [&](bool traced, TraceCollector* sink,
                 std::vector<state::State>& out) {
    out.resize(2);
    std::mutex mu;
    comm::RunOptions opts;
    opts.obs.trace = traced;
    opts.obs.dump_on_failure = traced;
    opts.trace_sink = sink;
    comm::Runtime::run(2, opts, [&](comm::Context& ctx) {
      core::OriginalCore core(small_cfg(), ctx, core::DecompScheme::kYZ,
                              {1, 2, 1});
      auto xi = core.make_state();
      core.initialize(xi,
                      {.kind = state::InitialCondition::kPlanetaryWave});
      core::CampaignOptions opt;
      opt.steps = 3;
      core::run_campaign(core, &ctx, xi, opt);
      std::lock_guard<std::mutex> lock(mu);
      out[static_cast<std::size_t>(ctx.world_rank())] = std::move(xi);
    });
  };
  std::vector<state::State> off_states, on_states;
  TraceCollector collector;
  run(false, nullptr, off_states);
  run(true, &collector, on_states);
  EXPECT_GT(collector.event_count(), 0u);
  for (std::size_t r = 0; r < off_states.size(); ++r)
    EXPECT_EQ(state::State::max_abs_diff(off_states[r], on_states[r],
                                         off_states[r].interior()),
              0.0)
        << "tracing changed rank " << r << "'s state";
}

}  // namespace
}  // namespace ca::obs
