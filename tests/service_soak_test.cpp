// Soak of the ensemble service: a mixed queue exercising all three cores,
// checkpoint-based preemption of a long low-priority run, and fault
// injection.  The service contract under test: every submitted job ends
// either kCompleted with a final state bit-for-bit identical to a solo
// (uninterrupted, fault-free) run of the same spec, or terminally kFailed
// carrying the FaultSummary of its attempts.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "service/runner.hpp"
#include "service/service.hpp"
#include "state/state.hpp"
#include "util/checkpoint.hpp"

namespace ca::service {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr double kWallClockBound = 120.0;

/// Seed found by scanning: with the scoped corrupt rule below (p = 0.02,
/// src 0 -> dst 1), attempt 1 (seed 11) injects exactly one corruption
/// and dies with a ChecksumError, while the reseeded attempt 2 (seed 12)
/// injects nothing and completes.  The injector is a pure hash of
/// (seed, rule, message identity), so this is stable as long as the
/// cores' traffic pattern is.
constexpr std::uint64_t kTransientSeed = 11;

core::DycoreConfig soak_config() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

/// Exact-mode CA switches: block-wide fresh C and no stale-C reuse keep
/// the trajectory bitwise invariant to the y split, so a py-changing
/// reshard resumes bit-for-bit against any same-pz reference.
core::CAOptions exact_ca_options() {
  core::CAOptions o;
  o.fresh_c_on_block_face = false;
  o.approximate_iteration = false;
  return o;
}

std::string temp_dir(const char* tag) {
  const auto p = std::filesystem::temp_directory_path() /
                 (std::string("ca_service_soak_") + tag);
  std::filesystem::create_directories(p);
  return p.string();
}

/// Solo reference: the same spec run once, uninterrupted and fault-free,
/// through the identical attempt machinery the service uses.
state::State solo_run(JobSpec spec, const std::string& prefix) {
  spec.faults = comm::FaultPlan();
  spec.checkpoint_every = 0;
  spec.comm = comm::RunOptions{};
  AttemptResult r = run_attempt(spec, 1, 0, prefix, {});
  EXPECT_TRUE(r.completed(spec.steps))
      << "solo reference for '" << spec.name << "' failed: " << r.error;
  return std::move(r.global);
}

void expect_bitwise(const state::State& got, const state::State& want,
                    const std::string& name) {
  ASSERT_GT(want.interior().volume(), 0) << name << ": empty reference";
  const double diff =
      state::State::max_abs_diff(got, want, want.interior());
  EXPECT_EQ(diff, 0.0) << name << ": service result diverged from solo run";
}

/// Pins a test to fixed job shapes: under the CI elastic leg's env
/// override the scheduler may squeeze a queued wide job to a narrower
/// decomposition, which paper-mode CA does not survive bitwise — that
/// path is covered by the exact-mode CAElasticSqueezeAndRegrowBitwise
/// test below.  Restores the variable on destruction.
struct ScopedUnsetEnv {
  explicit ScopedUnsetEnv(const char* name) : name_(name) {
    const char* v = ::getenv(name);
    had_ = v != nullptr;
    if (had_) saved_ = v;
    ::unsetenv(name);
  }
  ~ScopedUnsetEnv() {
    if (had_) ::setenv(name_, saved_.c_str(), 1);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

void await_running(EnsembleService& svc, int id) {
  const auto start = Clock::now();
  while (svc.state(id) == JobState::kQueued) {
    ASSERT_LT(elapsed_seconds(start), 30.0) << "job " << id << " never ran";
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_EQ(svc.state(id), JobState::kRunning);
}

TEST(ServiceSoak, MixedQueueCompletesOrFailsTerminally) {
  const ScopedUnsetEnv elastic_off("CA_AGCM_SERVICE_ELASTIC");
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("mixed");
  const auto start = Clock::now();

  ServiceOptions opt;
  opt.slots = 3;
  opt.rank_budget = 4;
  opt.queue_capacity = 16;
  opt.checkpoint_dir = dir;

  // A long, preemptible, low-priority run occupying the whole rank budget.
  JobSpec longj;
  longj.name = "long";
  longj.core = CoreKind::kOriginal;
  longj.config = cfg;
  longj.dims = {1, 2, 2};
  longj.steps = 16;
  longj.checkpoint_every = 1;
  longj.priority = 0;

  // A short high-priority job that cannot fit until `long` yields.
  JobSpec hipri;
  hipri.name = "hipri";
  hipri.core = CoreKind::kOriginal;
  hipri.config = cfg;
  hipri.dims = {1, 2, 1};
  hipri.steps = 3;
  hipri.priority = 10;

  JobSpec serial;
  serial.name = "serial_hs";
  serial.core = CoreKind::kSerial;
  serial.config = cfg;
  serial.steps = 3;
  serial.held_suarez = true;
  serial.priority = 5;

  JobSpec caj;
  caj.name = "ca";
  caj.core = CoreKind::kCA;
  caj.config = cfg;
  caj.dims = {1, 1, 2};
  caj.steps = 2;
  caj.priority = 5;
  // Preemptible: the CA carry travels in the checkpoint v3 block, so the
  // mixed queue exercises CA checkpoint writes (and resume, if evicted).
  caj.checkpoint_every = 1;

  // Certain death: probability-1 payload corruption on every message.
  // Reseeding cannot save it, so the attempt budget drains and the job
  // must end kFailed with the fault evidence attached.
  JobSpec faulty;
  faulty.name = "faulty";
  faulty.core = CoreKind::kOriginal;
  faulty.config = cfg;
  faulty.dims = {1, 2, 1};
  faulty.steps = 2;
  faulty.priority = 5;
  {
    comm::FaultPlan plan(7u);
    comm::FaultRule r;
    r.kind = comm::FaultKind::kCorrupt;
    r.probability = 1.0;
    plan.add_rule(r);
    faulty.faults = plan;
  }
  faulty.max_attempts = 2;
  faulty.retry_backoff_seconds = 0.001;
  faulty.comm.recv_timeout = std::chrono::milliseconds(400);

  // Solo references for everything expected to complete.
  std::map<std::string, state::State> solo;
  solo["long"] = solo_run(longj, dir + "/solo_long");
  solo["hipri"] = solo_run(hipri, dir + "/solo_hipri");
  solo["serial_hs"] = solo_run(serial, dir + "/solo_serial");
  solo["ca"] = solo_run(caj, dir + "/solo_ca");

  EnsembleService svc(opt);
  const int L = svc.submit(longj);
  // Let the long job own the budget before the rest of the queue arrives,
  // so the high-priority submission must preempt it.
  await_running(svc, L);
  const int H = svc.submit(hipri);
  const int S = svc.submit(serial);
  const int C = svc.submit(caj);
  const int F = svc.submit(faulty);
  svc.drain();
  EXPECT_LT(elapsed_seconds(start), kWallClockBound) << "soak hung";

  // Every job is terminal: completed bit-for-bit vs solo, or failed with
  // fault evidence.
  for (int id : {L, H, S, C, F}) {
    const JobResult r = svc.result(id);
    SCOPED_TRACE(::testing::Message() << "job '" << r.name << "'");
    if (r.state == JobState::kCompleted) {
      EXPECT_EQ(r.steps_done, svc.result(id).steps_done);
      ASSERT_EQ(solo.count(r.name), 1u);
      expect_bitwise(r.final_state, solo.at(r.name), r.name);
    } else {
      ASSERT_EQ(r.state, JobState::kFailed);
      EXPECT_FALSE(r.error.empty());
      EXPECT_GT(r.faults.injected_total(), 0u)
          << "failed without fault evidence";
    }
  }

  const JobResult rl = svc.result(L);
  EXPECT_EQ(rl.state, JobState::kCompleted);
  EXPECT_GE(rl.metrics.preemptions, 1)
      << "the long job was never preempted; the scenario is vacuous";
  EXPECT_EQ(svc.state(H), JobState::kCompleted);
  EXPECT_EQ(svc.state(S), JobState::kCompleted);
  EXPECT_EQ(svc.state(C), JobState::kCompleted);

  const JobResult rf = svc.result(F);
  EXPECT_EQ(rf.state, JobState::kFailed);
  EXPECT_EQ(rf.metrics.attempts, 2);
  EXPECT_GE(rf.faults.injected_corrupt, 1u);
  EXPECT_GE(rf.faults.detected_total(), 1u);

  const util::Json report = svc.report();
  EXPECT_EQ(validate_report(report), "");
  const util::Json* s = report.find("service");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->find("jobs_completed")->as_double(), 4.0);
  EXPECT_EQ(s->find("jobs_failed")->as_double(), 1.0);
  EXPECT_GE(s->find("preemptions")->as_double(), 1.0);
  EXPECT_GE(s->find("retries")->as_double(), 1.0);
}

TEST(ServiceSoak, CAPreemptResumeBitwise) {
  // The tentpole contract of CA resumability: a communication-avoiding
  // job preempted at a checkpoint must resume — prognostic fields from
  // the payload, cross-step carry (deferred final smoothing, stale C
  // anchors, step parity) from the v3 carry block — and land bit-for-bit
  // on the uninterrupted trajectory.  checkpoint_every = 1 with a
  // low priority makes it the eviction victim as soon as the
  // high-priority job arrives, so the yield lands mid-run where the
  // carry actually matters (between the stale-C step pair).
  const ScopedUnsetEnv elastic_off("CA_AGCM_SERVICE_ELASTIC");
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("ca_preempt");
  const auto start = Clock::now();

  ServiceOptions opt;
  opt.slots = 2;
  opt.rank_budget = 4;
  opt.checkpoint_dir = dir;

  JobSpec caj;
  caj.name = "ca_long";
  caj.core = CoreKind::kCA;
  caj.config = cfg;
  caj.dims = {1, 2, 2};  // ny/py = 8 >= 3M+1, nz/pz = 4 >= 3
  caj.steps = 6;
  caj.priority = 0;
  caj.checkpoint_every = 1;

  JobSpec hipri;
  hipri.name = "hipri";
  hipri.core = CoreKind::kOriginal;
  hipri.config = cfg;
  hipri.dims = {1, 2, 1};
  hipri.steps = 2;
  hipri.priority = 10;

  const state::State reference = solo_run(caj, dir + "/solo_ca");

  EnsembleService svc(opt);
  const int C = svc.submit(caj);
  // The CA job must own the whole budget before the high-priority job
  // arrives, so the latter can only run by evicting it.
  await_running(svc, C);
  const int H = svc.submit(hipri);
  svc.drain();
  EXPECT_LT(elapsed_seconds(start), kWallClockBound) << "soak hung";

  EXPECT_EQ(svc.state(H), JobState::kCompleted);
  const JobResult rc = svc.result(C);
  ASSERT_EQ(rc.state, JobState::kCompleted) << rc.error;
  ASSERT_GE(rc.metrics.preemptions, 1)
      << "the CA job was never preempted; the scenario is vacuous";
  expect_bitwise(rc.final_state, reference, caj.name);
}

void await_completed(EnsembleService& svc, int id) {
  const auto start = Clock::now();
  while (svc.state(id) != JobState::kCompleted) {
    ASSERT_LT(elapsed_seconds(start), 60.0) << "job " << id << " never done";
    ASSERT_NE(svc.state(id), JobState::kFailed) << svc.result(id).error;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

TEST(ServiceSoak, CAElasticSqueezeAndRegrowBitwise) {
  // Voluntary elasticity end to end.  A wide CA job arriving while a
  // high-priority blocker holds half the budget is squeezed onto the idle
  // ranks (it runs narrow NOW instead of waiting for its full shape);
  // when it later re-enters the queue against a freed budget it re-grows
  // to its submitted decomposition, resharding its checkpoint set across
  // the py change.  Exact-mode CA is bitwise invariant to the y split and
  // every shape in play keeps pz = 2, so the squeezed-then-regrown
  // trajectory must land bit-for-bit on the uninterrupted {1,2,2} run.
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("ca_elastic");
  const auto start = Clock::now();

  ServiceOptions opt;
  opt.slots = 2;
  opt.rank_budget = 4;
  opt.checkpoint_dir = dir;
  opt.elastic = true;

  // Phase 1 blocker: holds 2 of the 4 ranks so the wide CA submit finds
  // a non-empty but insufficient idle budget — the squeeze precondition.
  JobSpec blocker;
  blocker.name = "blocker";
  blocker.core = CoreKind::kOriginal;
  blocker.config = cfg;
  blocker.dims = {1, 2, 1};
  blocker.steps = 4;
  blocker.priority = 10;

  JobSpec caj;
  caj.name = "ca_elastic";
  caj.core = CoreKind::kCA;
  caj.config = cfg;
  caj.ca_options = exact_ca_options();
  caj.dims = {1, 2, 2};  // squeeze target yz_grid(2, 8) = {1,1,2}: same pz
  caj.steps = 12;
  caj.priority = 0;
  caj.checkpoint_every = 1;

  // Phase 2 evictor: needs the whole budget, so the narrow CA job must
  // yield; once the evictor finishes, the CA job re-enters against four
  // idle ranks and the pop-side re-growth widens it back to spec.dims.
  JobSpec evictor;
  evictor.name = "evictor";
  evictor.core = CoreKind::kOriginal;
  evictor.config = cfg;
  evictor.dims = {1, 2, 2};
  evictor.steps = 2;
  evictor.priority = 10;

  const state::State reference = solo_run(caj, dir + "/solo_ca");

  EnsembleService svc(opt);
  const int B = svc.submit(blocker);
  await_running(svc, B);
  const int C = svc.submit(caj);
  // The squeeze happens on the scheduler thread before the job is popped,
  // so by the time it runs it already runs narrow.
  await_running(svc, C);
  ASSERT_GE(svc.elastic_shrinks(), 1u)
      << "the wide CA job was not squeezed onto the idle ranks";
  await_completed(svc, B);
  const int E = svc.submit(evictor);
  svc.drain();
  EXPECT_LT(elapsed_seconds(start), kWallClockBound) << "soak hung";

  EXPECT_EQ(svc.state(B), JobState::kCompleted);
  EXPECT_EQ(svc.state(E), JobState::kCompleted);
  const JobResult rc = svc.result(C);
  ASSERT_EQ(rc.state, JobState::kCompleted) << rc.error;
  EXPECT_GE(rc.metrics.preemptions, 1)
      << "the evictor never displaced the narrow CA job";
  EXPECT_GE(svc.elastic_grows(), 1u)
      << "the CA job never re-grew to its submitted decomposition";
  // Squeezes and re-grows ride on checkpoint reshards: the only
  // re-dispatches are the preemption yields themselves, never a failed
  // attempt (a mis-resharded carry would surface here as a retry).
  EXPECT_EQ(rc.metrics.attempts, 1 + rc.metrics.preemptions);
  expect_bitwise(rc.final_state, reference, caj.name);

  const util::Json report = svc.report();
  EXPECT_EQ(validate_report(report), "");
  const util::Json* s = report.find("service");
  ASSERT_NE(s, nullptr);
  EXPECT_GE(s->find("elastic_shrinks")->as_double(), 1.0);
  EXPECT_GE(s->find("elastic_grows")->as_double(), 1.0);
}

TEST(ServiceSoak, ConcurrentShutdownIsSafe) {
  // shutdown() used to double-join: a second caller arriving after
  // stopping_ was set but before slots_ was cleared joined the same
  // std::thread objects again (UB, aborts under libstdc++).  All callers
  // must now return cleanly with the slots stopped exactly once.
  const core::DycoreConfig cfg = soak_config();

  PoolOptions opt;
  opt.slots = 2;
  opt.rank_budget = 2;
  opt.checkpoint_dir = temp_dir("concurrent_shutdown");

  JobSpec j;
  j.name = "short";
  j.core = CoreKind::kSerial;
  j.config = cfg;
  j.steps = 2;

  auto job = std::make_shared<Job>(0, j);
  WorkerPool pool(opt);
  ASSERT_TRUE(pool.submit(job, /*block=*/true));

  std::vector<std::thread> callers;
  for (int i = 0; i < 4; ++i)
    callers.emplace_back([&pool] { pool.shutdown(); });
  for (auto& t : callers) t.join();
  EXPECT_EQ(pool.state(*job), JobState::kCompleted);
  pool.shutdown();  // idempotent after the fact as well
}

TEST(ServiceSoak, RetryResumesFromTheCheckpointHeaderStep) {
  // The scenario the bitwise contract almost lost: a job yields at step 2
  // (the pool marks steps_done = 2), a later attempt advances the single
  // per-rank checkpoint file to step 4 and then dies.  The retry is
  // handed start_step = 2 but the file now holds step-4 state; replaying
  // steps 3..4 on top of it would silently diverge from the solo run.
  // run_attempt must trust the header's step instead.
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("hdr_resume");
  const std::string prefix = dir + "/job";

  JobSpec j;
  j.name = "hdr_resume";
  j.core = CoreKind::kSerial;
  j.config = cfg;
  j.steps = 6;
  j.checkpoint_every = 2;

  const state::State reference = solo_run(j, dir + "/solo");

  // Attempt 1 yields at the first checkpoint: file records step 2.
  AttemptResult a1 = run_attempt(j, 1, 0, prefix, [] { return true; });
  ASSERT_TRUE(a1.error.empty()) << a1.error;
  ASSERT_TRUE(a1.yielded);
  ASSERT_EQ(a1.end_step, 2);

  // Stand-in for the failed attempt that checkpointed mid-run: resume
  // from 2, yield again at step 4 — the file now records step 4, while
  // the pool's yield mark is still 2.
  AttemptResult a2 = run_attempt(j, 2, 2, prefix, [] { return true; });
  ASSERT_TRUE(a2.error.empty()) << a2.error;
  ASSERT_TRUE(a2.yielded);
  ASSERT_EQ(a2.end_step, 4);

  // The retry with the stale start_step label must pick up at the
  // header's step 4 and land bitwise on the solo trajectory.
  AttemptResult a3 = run_attempt(j, 3, 2, prefix, {});
  ASSERT_TRUE(a3.error.empty()) << a3.error;
  ASSERT_TRUE(a3.completed(j.steps));
  expect_bitwise(a3.global, reference, j.name);
}

TEST(ServiceSoak, InconsistentCheckpointSetFailsTheAttempt) {
  // Distributed resume with rank headers recording different steps: the
  // earlier per-rank states are already overwritten, so there is no
  // common state to resume — the attempt must fail loudly, not mix steps.
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("hdr_mismatch");
  const std::string prefix = dir + "/job";

  JobSpec j;
  j.name = "hdr_mismatch";
  j.core = CoreKind::kOriginal;
  j.config = cfg;
  j.dims = {1, 2, 1};
  j.steps = 4;
  j.checkpoint_every = 2;

  AttemptResult a1 = run_attempt(j, 1, 0, prefix, [] { return true; });
  ASSERT_TRUE(a1.error.empty()) << a1.error;
  ASSERT_EQ(a1.end_step, 2);

  // Freeze rank 0's step-2 file, let both ranks advance to step 4, then
  // roll rank 0 back: rank 0's header says 2, rank 1's says 4.
  const auto r0 = util::checkpoint_path(prefix, 0);
  std::filesystem::copy_file(
      r0, r0 + ".step2",
      std::filesystem::copy_options::overwrite_existing);
  AttemptResult a2 = run_attempt(j, 2, 2, prefix, [] { return true; });
  ASSERT_TRUE(a2.error.empty()) << a2.error;
  ASSERT_EQ(a2.end_step, 4);
  std::filesystem::copy_file(
      r0 + ".step2", r0,
      std::filesystem::copy_options::overwrite_existing);

  AttemptResult a3 = run_attempt(j, 3, 2, prefix, {});
  EXPECT_FALSE(a3.error.empty())
      << "an attempt resumed a mixed-step checkpoint set";
  EXPECT_NE(a3.error.find("inconsistent checkpoint set"), std::string::npos)
      << a3.error;
}

TEST(ServiceSoak, ShutdownCancelsBackoffGates) {
  // A hard-faulting job with an hour-long base backoff: shutdown must
  // still drain it promptly by running the pending retry immediately
  // instead of sleeping out the gate.
  const core::DycoreConfig cfg = soak_config();
  const auto start = Clock::now();

  PoolOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = temp_dir("shutdown");

  JobSpec j;
  j.name = "doomed";
  j.core = CoreKind::kOriginal;
  j.config = cfg;
  j.dims = {1, 2, 1};
  j.steps = 2;
  {
    comm::FaultPlan plan(7u);
    comm::FaultRule r;
    r.kind = comm::FaultKind::kCorrupt;
    r.probability = 1.0;
    plan.add_rule(r);
    j.faults = plan;
  }
  j.max_attempts = 2;
  j.retry_backoff_seconds = 3600.0;
  j.comm.recv_timeout = std::chrono::milliseconds(400);

  auto job = std::make_shared<Job>(0, j);
  {
    WorkerPool pool(opt);
    ASSERT_TRUE(pool.submit(job, /*block=*/true));
    pool.shutdown();
    EXPECT_EQ(pool.state(*job), JobState::kFailed);
  }
  EXPECT_EQ(job->metrics.attempts, 2)
      << "the drain must still spend the attempt budget";
  EXPECT_LT(elapsed_seconds(start), kWallClockBound)
      << "shutdown waited out the backoff gate";
}

TEST(ServiceSoak, AgingBoundsLowPriorityWaitUnderABimodalMix) {
  // Anti-starvation bound (the aging knob): with one slot and a steady
  // stream of fresh short high-priority jobs, strict (priority, FIFO)
  // order would park a low-priority job until the stream ends — every
  // new arrival outranks it.  With aging on, the parked job's effective
  // priority grows while each arrival starts from zero, so its queue
  // wait is bounded by roughly gap/rate plus a service time — asserted
  // here as K x the measured mean service time (+ scheduling slack),
  // NOT by the length of the stream.
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("aging");
  const auto start = Clock::now();

  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 1;
  opt.queue_capacity = 8;
  opt.checkpoint_dir = dir;
  // Priority gap 10 / 200 points per second: a parked job overtakes
  // fresh arrivals after 50 ms of waiting.
  opt.aging_rate = 200.0;

  JobSpec hi;
  hi.name = "hi";
  hi.core = CoreKind::kSerial;
  hi.config = cfg;
  hi.steps = 2;
  hi.priority = 10;

  JobSpec lo = hi;
  lo.name = "lo";
  lo.priority = 0;

  EnsembleService svc(opt);
  const int primer = svc.submit(hi);
  await_running(svc, primer);  // the pool is busy before `lo` queues
  const int L = svc.submit(lo);

  std::vector<int> stream{primer};
  while (elapsed_seconds(start) < 2.0) {
    stream.push_back(svc.submit(hi, /*block=*/true));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  svc.drain();
  EXPECT_LT(elapsed_seconds(start), kWallClockBound) << "soak hung";
  ASSERT_GE(stream.size(), 10u) << "high-priority stream too thin";

  double service_sum = 0.0;
  for (int id : stream) {
    const JobResult r = svc.result(id);
    ASSERT_EQ(r.state, JobState::kCompleted) << r.name << ": " << r.error;
    service_sum += r.metrics.run_seconds;
  }
  const double mean_service =
      service_sum / static_cast<double>(stream.size());

  const JobResult rl = svc.result(L);
  ASSERT_EQ(rl.state, JobState::kCompleted) << rl.error;
  // The starvation bound, in scheduler DECISIONS rather than wall-clock
  // (a wall-clock bound was flaky on loaded machines: the wait scales
  // with however long each service time stretches, which is exactly the
  // noise we don't want to assert on).  While `lo` waits, each dispatch
  // of another job increments its overtake count; aging caps those at
  // the jobs already admitted ahead of it (at most the queue capacity)
  // plus the arrivals that still outrank it during the gap/rate overtake
  // window (one per mean service time, since the single slot dispatches
  // serially), plus a little scheduler slack.  The count must NOT scale
  // with the ~2 s stream length.
  const double overtake_window = 10.0 / opt.aging_rate;  // gap / rate
  const double per_window =
      std::ceil(overtake_window / std::max(mean_service, 1e-9));
  const auto bound = static_cast<std::uint64_t>(
      static_cast<double>(opt.queue_capacity) + per_window + 2.0);
  EXPECT_LE(rl.metrics.dispatches_overtaken, bound)
      << "low-priority job starved despite aging (" << stream.size()
      << " high-priority jobs streamed, mean service " << mean_service
      << " s)";
  EXPECT_GT(rl.metrics.queue_wait_seconds, 0.0);
}

TEST(ServiceSoak, RetryCompletesAfterTransientFault) {
  // A narrowly scoped low-probability corrupt rule with a seed chosen (by
  // scanning, see bench/bench_service_throughput.cpp) so that attempt 1
  // (seed) injects at least one corruption — the attempt dies with a
  // ChecksumError — while the reseeded attempt 2 (seed + 1) injects
  // nothing and completes.  The service's retry-with-backoff must carry
  // the job to kCompleted with the solo-run state, bit for bit.
  const core::DycoreConfig cfg = soak_config();
  const std::string dir = temp_dir("retry");

  JobSpec j;
  j.name = "transient";
  j.core = CoreKind::kOriginal;
  j.config = cfg;
  j.dims = {1, 2, 1};
  j.steps = 2;
  {
    comm::FaultPlan plan(kTransientSeed);
    comm::FaultRule r;
    r.kind = comm::FaultKind::kCorrupt;
    r.probability = 0.02;
    r.src = 0;
    r.dst = 1;
    plan.add_rule(r);
    j.faults = plan;
  }
  j.max_attempts = 3;
  j.retry_backoff_seconds = 0.001;
  j.comm.recv_timeout = std::chrono::milliseconds(400);

  const state::State reference = solo_run(j, dir + "/solo");

  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = dir;
  EnsembleService svc(opt);
  const int id = svc.submit(j);
  svc.wait(id);

  const JobResult r = svc.result(id);
  ASSERT_EQ(r.state, JobState::kCompleted) << r.error;
  EXPECT_EQ(r.metrics.attempts, 2)
      << "seed no longer fails exactly once; re-scan kTransientSeed";
  EXPECT_GE(r.faults.injected_corrupt, 1u);
  EXPECT_GE(r.faults.detected_checksum, 1u);
  EXPECT_GT(r.metrics.backoff_seconds, 0.0);
  expect_bitwise(r.final_state, reference, j.name);

  const util::Json report = svc.report();
  EXPECT_EQ(validate_report(report), "");
  EXPECT_GE(report.find("service")->find("retries")->as_double(), 1.0);
}

}  // namespace
}  // namespace ca::service
