// Chaos suite, part 2: sweep every core (serial reference, distributed
// original, communication-avoiding) and the 1xN / Nx1 / NxM decompositions
// under a low-probability mix of recoverable faults, and soak the CA core
// across several fault seeds.  Every run must finish inside a wall-clock
// bound (no hangs) and reproduce the fault-free state bit-for-bit.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <iostream>

#include "comm/context.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "perf/report.hpp"

namespace ca::core {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr double kWallClockBound = 120.0;

DycoreConfig chaos_config() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

enum class CoreKind { kSerial, kOriginal, kCA };

struct SweepCase {
  CoreKind kind;
  DecompScheme scheme;       // only read for kOriginal
  std::array<int, 3> dims;   // {1,1,1} for kSerial
  const char* name;
};

/// Runs one core to `steps` under `opts` and returns the global state
/// (gathered to rank 0 for the distributed cores).
state::State run_core(const SweepCase& c, const DycoreConfig& cfg, int steps,
                      const comm::RunOptions& opts) {
  const auto ic = state::InitialCondition::kPlanetaryWave;
  if (c.kind == CoreKind::kSerial) {
    // The serial core never communicates; it anchors the sweep and proves
    // the harness itself does not perturb a comm-free run.
    SerialCore core(cfg);
    auto xi = core.make_state();
    state::InitialOptions init;
    init.kind = ic;
    core.initialize(xi, init);
    core.run(xi, steps);
    return xi;
  }
  state::State global;
  const int p = c.dims[0] * c.dims[1] * c.dims[2];
  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    state::State g;
    if (c.kind == CoreKind::kOriginal) {
      OriginalCore core(cfg, ctx, c.scheme, c.dims);
      auto xi = core.make_state();
      state::InitialOptions init;
      init.kind = ic;
      core.initialize(xi, init);
      core.run(xi, steps);
      g = gather_global(core.op_context(), ctx, core.topology(), xi);
    } else {
      CACore core(cfg, ctx, c.dims);
      auto xi = core.make_state();
      state::InitialOptions init;
      init.kind = ic;
      core.initialize(xi, init);
      core.run(xi, steps);
      g = gather_global(core.op_context(), ctx, core.topology(), xi);
    }
    if (ctx.world_rank() == 0) global = std::move(g);
  });
  return global;
}

comm::FaultPlan mixed_plan(std::uint64_t seed) {
  comm::FaultPlan plan(seed);
  auto add = [&](comm::FaultKind kind, double p, int param) {
    comm::FaultRule r;
    r.kind = kind;
    r.probability = p;
    r.param = param;
    plan.add_rule(r);
  };
  add(comm::FaultKind::kDrop, 0.05, 1);
  add(comm::FaultKind::kDuplicate, 0.05, 1);
  add(comm::FaultKind::kDelay, 0.05, 2);
  return plan;
}

class ChaosSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ChaosSweep, RecoversBitForBitUnderMixedFaults) {
  const SweepCase& c = GetParam();
  const DycoreConfig cfg = chaos_config();
  constexpr int kSteps = 2;

  const state::State reference =
      run_core(c, cfg, kSteps, comm::RunOptions{});

  comm::FaultPlan plan = mixed_plan(0xC0FFEEu);
  comm::RunOptions opts;
  opts.faults = &plan;
  const auto start = Clock::now();
  const state::State chaos = run_core(c, cfg, kSteps, opts);
  EXPECT_LT(elapsed_seconds(start), kWallClockBound) << "chaos run hung";

  const auto s = plan.summary();
  const int p = c.dims[0] * c.dims[1] * c.dims[2];
  if (p > 1) {
    EXPECT_GT(s.injected_total(), 0u)
        << "no faults injected on " << c.name << "; sweep case is vacuous";
  }
  EXPECT_EQ(s.detected_total(), 0u)
      << "recoverable faults must not surface as errors";
  const double diff =
      state::State::max_abs_diff(chaos, reference, reference.interior());
  EXPECT_EQ(diff, 0.0) << c.name << ": recovery was not bit-for-bit";
}

// 1xN = one decomposed axis (z), Nx1 = the other (y), NxM = both.  The CA
// core requires px == 1; the original core sweeps its kYZ scheme over the
// same shapes.
INSTANTIATE_TEST_SUITE_P(
    CoresAndDecomps, ChaosSweep,
    ::testing::Values(
        SweepCase{CoreKind::kSerial, DecompScheme::kYZ, {1, 1, 1}, "serial"},
        SweepCase{CoreKind::kOriginal, DecompScheme::kYZ, {1, 1, 2},
                  "original_1xN"},
        SweepCase{CoreKind::kOriginal, DecompScheme::kYZ, {1, 2, 1},
                  "original_Nx1"},
        SweepCase{CoreKind::kOriginal, DecompScheme::kYZ, {1, 2, 2},
                  "original_NxM"},
        SweepCase{CoreKind::kCA, DecompScheme::kYZ, {1, 1, 2}, "ca_1xN"},
        SweepCase{CoreKind::kCA, DecompScheme::kYZ, {1, 2, 1}, "ca_Nx1"},
        SweepCase{CoreKind::kCA, DecompScheme::kYZ, {1, 2, 2}, "ca_NxM"}),
    [](const ::testing::TestParamInfo<SweepCase>& i) {
      return i.param.name;
    });

TEST(ChaosSoak, CASurvivesManySeedsBitForBit) {
  // Soak: higher fault rates, stalls included, several seeds.  Each seeded
  // run must still match the fault-free reference exactly.
  const DycoreConfig cfg = chaos_config();
  constexpr int kSteps = 3;
  const SweepCase ca{CoreKind::kCA, DecompScheme::kYZ, {1, 2, 2}, "ca_soak"};

  const state::State reference =
      run_core(ca, cfg, kSteps, comm::RunOptions{});

  for (std::uint64_t seed : {11ull, 2024ull, 987654321ull}) {
    SCOPED_TRACE(::testing::Message() << "fault seed " << seed);
    comm::FaultPlan plan = mixed_plan(seed);
    comm::FaultRule stall;
    stall.kind = comm::FaultKind::kStall;
    stall.probability = 0.25;
    stall.param = 20;  // 20 poll intervals = 4 ms per stalled step
    plan.add_rule(stall);

    comm::RunOptions opts;
    opts.faults = &plan;
    const auto start = Clock::now();
    const state::State chaos = run_core(ca, cfg, kSteps, opts);
    EXPECT_LT(elapsed_seconds(start), kWallClockBound) << "soak run hung";

    const auto s = plan.summary();
    EXPECT_GT(s.injected_total(), 0u);
    EXPECT_EQ(s.detected_total(), 0u);
    const double diff =
        state::State::max_abs_diff(chaos, reference, reference.interior());
    EXPECT_EQ(diff, 0.0) << "soak seed " << seed << " diverged";
    perf::print_fault_summary(
        std::cout, s,
        "soak seed " + std::to_string(static_cast<unsigned long long>(seed)));
  }
}

}  // namespace
}  // namespace ca::core
