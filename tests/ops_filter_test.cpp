// Fourier polar filter: damping behavior, conservation of the zonal mean,
// linearity, idempotence-like contraction, and the distributed (X-Y)
// path's agreement with the local one.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "core/dycore_config.hpp"
#include "mesh/decomp.hpp"
#include "ops/filter.hpp"
#include "util/math.hpp"

namespace ca::ops {
namespace {

struct Fixture {
  Fixture(int nx = 48, int ny = 24, int nz = 4)
      : mesh(nx, ny, nz),
        levels(mesh::SigmaLevels::uniform(nz)),
        strat(levels),
        decomp(mesh, {1, 1, 1}, {0, 0, 0}) {
    ctx = OpContext{&mesh, &levels, &strat, &decomp, ModelParams{}};
  }
  mesh::LatLonMesh mesh;
  mesh::SigmaLevels levels;
  state::Stratification strat;
  mesh::DomainDecomp decomp;
  OpContext ctx;
};

TEST(Filter, PolarRowsActiveEquatorialRowsNot) {
  Fixture f;
  FourierFilter filt(f.ctx);
  EXPECT_TRUE(filt.row_active(0));
  EXPECT_TRUE(filt.row_active(23));
  EXPECT_FALSE(filt.row_active(11));
  EXPECT_FALSE(filt.row_active(12));
  EXPECT_EQ(filt.active_rows(0, 24), 2 * filt.active_rows(0, 12));
}

TEST(Filter, PreservesZonalMean) {
  Fixture f;
  FourierFilter filt(f.ctx);
  std::vector<double> line(48);
  for (int i = 0; i < 48; ++i)
    line[static_cast<std::size_t>(i)] =
        3.5 + std::sin(2.0 * util::kPi * 11 * i / 48.0);
  const double mean_before = 3.5;
  filt.filter_line(line, /*sin_theta=*/0.05);
  double mean_after = 0.0;
  for (double v : line) mean_after += v;
  mean_after /= 48.0;
  EXPECT_NEAR(mean_after, mean_before, 1e-12);
}

TEST(Filter, DampsHighWavenumbersNearPole) {
  Fixture f;
  FourierFilter filt(f.ctx);
  // Highest resolvable wavenumber at a near-pole row must be damped hard.
  std::vector<double> line(48);
  for (int i = 0; i < 48; ++i)
    line[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 1.0 : -1.0;
  filt.filter_line(line, /*sin_theta=*/0.05);
  double amp = 0.0;
  for (double v : line) amp = std::max(amp, std::abs(v));
  EXPECT_LT(amp, 0.1) << "wavenumber nx/2 must be strongly damped";
}

TEST(Filter, NearEquatorLineAlmostUntouched) {
  Fixture f;
  FourierFilter filt(f.ctx);
  std::vector<double> line(48), orig(48);
  for (int i = 0; i < 48; ++i) {
    line[static_cast<std::size_t>(i)] =
        std::sin(2.0 * util::kPi * 3 * i / 48.0);
    orig[static_cast<std::size_t>(i)] = line[static_cast<std::size_t>(i)];
  }
  // sin(theta) = 1: damping factor min(1, aspect/sin(pi m/n)) with aspect
  // = 1: only wavenumbers near n/2 touched; m=3 untouched.
  filt.filter_line(line, 1.0);
  for (int i = 0; i < 48; ++i)
    EXPECT_NEAR(line[static_cast<std::size_t>(i)],
                orig[static_cast<std::size_t>(i)], 1e-10);
}

TEST(Filter, IsLinear) {
  Fixture f;
  FourierFilter filt(f.ctx);
  std::vector<double> a(48), b(48), combo(48);
  for (int i = 0; i < 48; ++i) {
    a[static_cast<std::size_t>(i)] = std::sin(0.7 * i);
    b[static_cast<std::size_t>(i)] = std::cos(1.3 * i + 0.4);
    combo[static_cast<std::size_t>(i)] =
        2.0 * a[static_cast<std::size_t>(i)] -
        0.5 * b[static_cast<std::size_t>(i)];
  }
  filt.filter_line(a, 0.1);
  filt.filter_line(b, 0.1);
  filt.filter_line(combo, 0.1);
  for (int i = 0; i < 48; ++i)
    EXPECT_NEAR(combo[static_cast<std::size_t>(i)],
                2.0 * a[static_cast<std::size_t>(i)] -
                    0.5 * b[static_cast<std::size_t>(i)],
                1e-10);
}

TEST(Filter, IsAContraction) {
  Fixture f;
  FourierFilter filt(f.ctx);
  std::vector<double> line(48);
  double energy_before = 0.0;
  for (int i = 0; i < 48; ++i) {
    line[static_cast<std::size_t>(i)] = std::sin(1.9 * i) + 0.3 * (i % 5);
    energy_before +=
        line[static_cast<std::size_t>(i)] * line[static_cast<std::size_t>(i)];
  }
  filt.filter_line(line, 0.08);
  double energy_after = 0.0;
  for (double v : line) energy_after += v * v;
  EXPECT_LE(energy_after, energy_before + 1e-12);
}

TEST(Filter, ApplyLocalTouchesOnlyActiveRows) {
  Fixture f;
  FourierFilter filt(f.ctx);
  state::State s(48, 24, 4, core::halos_for_depth(1));
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 24; ++j)
      for (int i = 0; i < 48; ++i)
        s.phi()(i, j, k) = std::sin(0.9 * i) * (j + 1);
  state::State before(48, 24, 4, core::halos_for_depth(1));
  before.assign(s, s.interior());
  filt.apply_local(f.ctx, s, s.interior());
  for (int j = 0; j < 24; ++j) {
    bool changed = false;
    for (int k = 0; k < 4 && !changed; ++k)
      for (int i = 0; i < 48 && !changed; ++i)
        if (s.phi()(i, j, k) != before.phi()(i, j, k)) changed = true;
    EXPECT_EQ(changed, filt.row_active(j)) << "row " << j;
  }
}

TEST(Filter, DistributedMatchesLocal) {
  // The X-Y decomposition's allgather-based filter must reproduce the
  // single-rank result exactly.
  const int nx = 48, ny = 24, nz = 4;
  Fixture f(nx, ny, nz);
  FourierFilter filt(f.ctx);
  state::State ref(nx, ny, nz, core::halos_for_depth(1));
  auto init = [&](state::State& s, const mesh::DomainDecomp& d) {
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) {
          const int gi = d.gi(i), gj = d.gj(j);
          s.u()(i, j, k) = std::sin(0.5 * gi + gj) + 0.1 * k;
          s.v()(i, j, k) = std::cos(0.8 * gi - gj);
          s.phi()(i, j, k) = std::sin(1.7 * gi) * gj;
        }
    for (int j = 0; j < d.lny(); ++j)
      for (int i = 0; i < d.lnx(); ++i)
        s.psa()(i, j) = 100.0 * std::sin(0.3 * d.gi(i) + d.gj(j));
  };
  init(ref, f.decomp);
  filt.apply_local(f.ctx, ref, ref.interior());

  comm::Runtime::run(4, [&](comm::Context& cc) {
    auto topo = comm::make_cart(cc, cc.world(), {4, 1, 1},
                                {true, false, false});
    mesh::LatLonMesh mesh(nx, ny, nz);
    auto levels = mesh::SigmaLevels::uniform(nz);
    state::Stratification strat(levels);
    mesh::DomainDecomp d(mesh, {4, 1, 1}, topo.coords);
    OpContext ctx{&mesh, &levels, &strat, &d, ModelParams{}};
    FourierFilter dfilt(ctx);
    state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
    init(s, d);
    dfilt.apply_distributed(ctx, cc, topo.line_x, s, s.interior());
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) {
          EXPECT_NEAR(s.u()(i, j, k), ref.u()(d.gi(i), d.gj(j), k), 1e-12);
          EXPECT_NEAR(s.phi()(i, j, k), ref.phi()(d.gi(i), d.gj(j), k),
                      1e-12);
        }
    for (int j = 0; j < d.lny(); ++j)
      for (int i = 0; i < d.lnx(); ++i)
        EXPECT_NEAR(s.psa()(i, j), ref.psa()(d.gi(i), d.gj(j)), 1e-12);
  });
}

}  // namespace
}  // namespace ca::ops
