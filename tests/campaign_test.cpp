// The campaign driver: step counting, diagnostics cadence, forcing
// application, checkpoint cadence, and core-type genericity.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/campaign.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"

namespace ca::core {
namespace {

DycoreConfig cfg() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  return c;
}

TEST(Campaign, DiagnosticsCadenceSerial) {
  SerialCore core(cfg());
  auto xi = core.make_state();
  core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
  std::vector<int> seen;
  CampaignOptions opt;
  opt.steps = 6;
  opt.diag_every = 2;
  opt.on_diagnostics = [&](int step, const GlobalDiag& d) {
    seen.push_back(step);
    EXPECT_TRUE(std::isfinite(d.total_energy()));
    EXPECT_GT(d.quad_energy, 0.0);
  };
  EXPECT_EQ(run_campaign(core, nullptr, xi, opt), 6);
  EXPECT_EQ(seen, (std::vector<int>{2, 4, 6}));
}

TEST(Campaign, ForcingIsApplied) {
  // With H-S forcing a jet decays in the boundary layer relative to an
  // unforced run.
  SerialCore core_a(cfg()), core_b(cfg());
  auto xa = core_a.make_state();
  auto xb = core_b.make_state();
  core_a.initialize(xa, {.kind = state::InitialCondition::kZonalJet});
  core_b.initialize(xb, {.kind = state::InitialCondition::kZonalJet});

  CampaignOptions unforced;
  unforced.steps = 3;
  run_campaign(core_a, nullptr, xa, unforced);

  physics::HeldSuarezForcing forcing(core_b.op_context());
  CampaignOptions forced;
  forced.steps = 3;
  forced.forcing = &forcing;
  forced.forcing_dt = 20.0 * 86400.0;  // exaggerate to make it visible
  run_campaign(core_b, nullptr, xb, forced);

  const double diff =
      state::State::max_abs_diff(xa, xb, xa.interior());
  EXPECT_GT(diff, 1e-3) << "the forcing must change the evolution";
}

TEST(Campaign, CheckpointCadenceDistributed) {
  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign")
                          .string();
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg(), ctx, DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    CampaignOptions opt;
    opt.steps = 4;
    opt.checkpoint_every = 4;
    opt.checkpoint_prefix = prefix;
    run_campaign(core, &ctx, xi, opt);

    // The checkpoint must reload into the same block.
    auto restored = core.make_state();
    mesh::LatLonMesh mesh(cfg().nx, cfg().ny, cfg().nz);
    const auto hdr = util::read_checkpoint(
        util::checkpoint_path(prefix, ctx.world_rank()), mesh,
        core.decomp(), restored);
    EXPECT_EQ(hdr.step, 4);
    EXPECT_DOUBLE_EQ(
        state::State::max_abs_diff(xi, restored, xi.interior()), 0.0);
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });
}

TEST(Campaign, WorksWithCACore) {
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CACore core(cfg(), ctx, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    int calls = 0;
    CampaignOptions opt;
    opt.steps = 3;
    opt.diag_every = 1;
    opt.on_diagnostics = [&](int, const GlobalDiag& d) {
      ++calls;
      EXPECT_TRUE(std::isfinite(d.total_energy()));
    };
    run_campaign(core, &ctx, xi, opt);
    EXPECT_EQ(calls, 3);
    core.finalize(xi);
  });
}

TEST(Campaign, ZeroStepsIsANoop) {
  SerialCore core(cfg());
  auto xi = core.make_state();
  core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
  auto before = core.make_state();
  before.assign(xi, xi.interior());
  CampaignOptions opt;  // steps = 0
  EXPECT_EQ(run_campaign(core, nullptr, xi, opt), 0);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xi, before, xi.interior()),
                   0.0);
}

}  // namespace
}  // namespace ca::core
