// The campaign driver: step counting, diagnostics cadence, forcing
// application, checkpoint cadence, and core-type genericity.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/campaign.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"

namespace ca::core {
namespace {

DycoreConfig cfg() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  return c;
}

TEST(Campaign, DiagnosticsCadenceSerial) {
  SerialCore core(cfg());
  auto xi = core.make_state();
  core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
  std::vector<int> seen;
  CampaignOptions opt;
  opt.steps = 6;
  opt.diag_every = 2;
  opt.on_diagnostics = [&](int step, const GlobalDiag& d) {
    seen.push_back(step);
    EXPECT_TRUE(std::isfinite(d.total_energy()));
    EXPECT_GT(d.quad_energy, 0.0);
  };
  EXPECT_EQ(run_campaign(core, nullptr, xi, opt), 6);
  EXPECT_EQ(seen, (std::vector<int>{2, 4, 6}));
}

TEST(Campaign, ForcingIsApplied) {
  // With H-S forcing a jet decays in the boundary layer relative to an
  // unforced run.
  SerialCore core_a(cfg()), core_b(cfg());
  auto xa = core_a.make_state();
  auto xb = core_b.make_state();
  core_a.initialize(xa, {.kind = state::InitialCondition::kZonalJet});
  core_b.initialize(xb, {.kind = state::InitialCondition::kZonalJet});

  CampaignOptions unforced;
  unforced.steps = 3;
  run_campaign(core_a, nullptr, xa, unforced);

  physics::HeldSuarezForcing forcing(core_b.op_context());
  CampaignOptions forced;
  forced.steps = 3;
  forced.forcing = &forcing;
  forced.forcing_dt = 20.0 * 86400.0;  // exaggerate to make it visible
  run_campaign(core_b, nullptr, xb, forced);

  const double diff =
      state::State::max_abs_diff(xa, xb, xa.interior());
  EXPECT_GT(diff, 1e-3) << "the forcing must change the evolution";
}

TEST(Campaign, CheckpointCadenceDistributed) {
  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign")
                          .string();
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg(), ctx, DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    CampaignOptions opt;
    opt.steps = 4;
    opt.checkpoint_every = 4;
    opt.checkpoint_prefix = prefix;
    run_campaign(core, &ctx, xi, opt);

    // The checkpoint must reload into the same block.
    auto restored = core.make_state();
    mesh::LatLonMesh mesh(cfg().nx, cfg().ny, cfg().nz);
    const auto hdr = util::read_checkpoint(
        util::checkpoint_path(prefix, ctx.world_rank()), mesh,
        core.decomp(), restored);
    EXPECT_EQ(hdr.step, 4);
    EXPECT_DOUBLE_EQ(
        state::State::max_abs_diff(xi, restored, xi.interior()), 0.0);
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });
}

TEST(Campaign, WorksWithCACore) {
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CACore core(cfg(), ctx, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
    int calls = 0;
    CampaignOptions opt;
    opt.steps = 3;
    opt.diag_every = 1;
    opt.on_diagnostics = [&](int, const GlobalDiag& d) {
      ++calls;
      EXPECT_TRUE(std::isfinite(d.total_energy()));
    };
    run_campaign(core, &ctx, xi, opt);
    EXPECT_EQ(calls, 3);
    core.finalize(xi);
  });
}

TEST(Campaign, ResumeOffsetMatchesStraightRun) {
  // 4 steps straight == 2 steps + checkpoint + a resumed campaign with
  // start_step = 2, bit for bit; checkpoint times forward correctly.
  const auto c = cfg();
  SerialCore straight(c);
  auto xs = straight.make_state();
  straight.initialize(xs, {.kind = state::InitialCondition::kPlanetaryWave});
  CampaignOptions all;
  all.steps = 4;
  EXPECT_EQ(run_campaign(straight, nullptr, xs, all), 4);

  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign_resume")
                          .string();
  SerialCore first(c);
  auto xi = first.make_state();
  first.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
  CampaignOptions half;
  half.steps = 2;
  half.checkpoint_every = 2;
  half.checkpoint_prefix = prefix;
  EXPECT_EQ(run_campaign(first, nullptr, xi, half), 2);

  SerialCore second(c);
  auto xr = second.make_state();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const auto hdr = util::read_checkpoint(util::checkpoint_path(prefix, 0),
                                         mesh, second.decomp(), xr);
  EXPECT_EQ(hdr.step, 2);
  EXPECT_DOUBLE_EQ(hdr.time_seconds, 2 * c.dt_advect);
  second.fill_boundaries(xr);
  CampaignOptions rest;
  rest.steps = 4;
  rest.start_step = 2;
  rest.start_time_seconds = hdr.time_seconds;
  rest.checkpoint_every = 2;
  rest.checkpoint_prefix = prefix;
  EXPECT_EQ(run_campaign(second, nullptr, xr, rest), 2);

  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xs, xr, xs.interior()), 0.0)
      << "a resumed campaign must be bitwise transparent";

  // The resumed campaign's checkpoint carries the absolute step and the
  // forwarded model time.
  auto again = second.make_state();
  const auto hdr2 = util::read_checkpoint(util::checkpoint_path(prefix, 0),
                                          mesh, second.decomp(), again);
  EXPECT_EQ(hdr2.step, 4);
  EXPECT_DOUBLE_EQ(hdr2.time_seconds, 4 * c.dt_advect);
  std::remove(util::checkpoint_path(prefix, 0).c_str());
}

TEST(Campaign, YieldStopsAtTheNextCheckpointBoundary) {
  const auto c = cfg();
  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign_yield")
                          .string();
  SerialCore core(c);
  auto xi = core.make_state();
  core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
  CampaignOptions opt;
  opt.steps = 6;
  opt.checkpoint_every = 2;
  opt.checkpoint_prefix = prefix;
  opt.should_yield = [] { return true; };
  // An immediate yield request stops the campaign at the first
  // checkpoint, not before it and not at the end.
  EXPECT_EQ(run_campaign(core, nullptr, xi, opt), 2);

  // Resuming without a yield finishes the remaining steps and lands on
  // the straight-run state.
  SerialCore ref(c);
  auto xref = ref.make_state();
  ref.initialize(xref, {.kind = state::InitialCondition::kZonalJet});
  CampaignOptions all;
  all.steps = 6;
  run_campaign(ref, nullptr, xref, all);

  CampaignOptions rest;
  rest.steps = 6;
  rest.start_step = 2;
  rest.checkpoint_every = 2;
  rest.checkpoint_prefix = prefix;
  EXPECT_EQ(run_campaign(core, nullptr, xi, rest), 4);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xi, xref, xi.interior()),
                   0.0);
  std::remove(util::checkpoint_path(prefix, 0).c_str());
}

TEST(Campaign, YieldDecisionIsCollective) {
  // Only rank 0 asks to yield; the allreduce must stop BOTH ranks at the
  // same checkpoint (a one-sided stop would deadlock the next exchange).
  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign_collective")
                          .string();
  std::array<int, 2> executed{-1, -1};
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg(), ctx, DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    CampaignOptions opt;
    opt.steps = 4;
    opt.checkpoint_every = 1;
    opt.checkpoint_prefix = prefix;
    opt.should_yield = [&] { return ctx.world_rank() == 0; };
    executed[static_cast<std::size_t>(ctx.world_rank())] =
        run_campaign(core, &ctx, xi, opt);
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });
  EXPECT_EQ(executed[0], 1);
  EXPECT_EQ(executed[1], 1) << "rank 1 did not honor rank 0's yield";
}

TEST(Campaign, CAPreemptedAtEveryCheckpointIsBitwise) {
  // The tentpole contract of CA resumability: the CA core carries state
  // across steps (deferred final smoothing, stale C anchors, the step
  // counter driving the refresh parity), so resuming from the prognostic
  // payload alone diverges.  With the carry riding in the checkpoint's
  // v3 block, a campaign preempted at EVERY checkpoint — each leg a
  // freshly constructed core — must land bit-for-bit on the
  // uninterrupted run.
  const auto c = cfg();
  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign_ca_resume")
                          .string();
  constexpr int kSteps = 6;
  state::State straight, legged;

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CACore core(c, ctx, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    CampaignOptions all;
    all.steps = kSteps;
    EXPECT_EQ(run_campaign(core, &ctx, xi, all), kSteps);
    core.finalize(xi);
    auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) straight = std::move(g);
  });

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    const mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
    int reached = 0;
    {
      CACore core(c, ctx, {1, 2, 1});
      auto xi = core.make_state();
      core.initialize(xi,
                      {.kind = state::InitialCondition::kPlanetaryWave});
      CampaignOptions first;
      first.steps = kSteps;
      first.checkpoint_every = 1;
      first.checkpoint_prefix = prefix;
      first.should_yield = [] { return true; };
      reached = run_campaign(core, &ctx, xi, first);
      EXPECT_EQ(reached, 1);
    }
    // Every later leg: a FRESH core restores the prognostics from the
    // payload and the cross-step carry from the v3 block, then is
    // preempted again at the very next checkpoint.
    while (reached < kSteps) {
      CACore core(c, ctx, {1, 2, 1});
      auto xi = core.make_state();
      std::vector<std::byte> carry;
      const auto hdr = util::read_checkpoint(
          util::checkpoint_path(prefix, ctx.world_rank()), mesh,
          core.decomp(), xi, &carry);
      EXPECT_EQ(hdr.step, reached);
      ASSERT_FALSE(carry.empty()) << "CA checkpoint lost its carry block";
      util::CarryReader r(carry);
      core.restore_carry(r);
      core.refresh_halos(xi, "restart");
      CampaignOptions leg;
      leg.steps = kSteps;
      leg.start_step = static_cast<int>(hdr.step);
      leg.start_time_seconds = hdr.time_seconds;
      leg.checkpoint_every = 1;
      leg.checkpoint_prefix = prefix;
      leg.should_yield = [] { return true; };
      const int executed = run_campaign(core, &ctx, xi, leg);
      EXPECT_EQ(executed, 1);
      reached += executed;
      if (reached == kSteps) {
        core.finalize(xi);
        auto g =
            gather_global(core.op_context(), ctx, core.topology(), xi);
        if (ctx.world_rank() == 0) legged = std::move(g);
      }
    }
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });

  ASSERT_GT(straight.interior().volume(), 0);
  EXPECT_DOUBLE_EQ(
      state::State::max_abs_diff(straight, legged, straight.interior()),
      0.0)
      << "a CA campaign preempted at every checkpoint must reproduce the "
         "uninterrupted run bit for bit";
}

TEST(Campaign, CheckpointBarrierRunsAtEveryCheckpoint) {
  // The yield allreduce doubles as the consistency barrier that keeps a
  // rank death from producing a mixed-step checkpoint set (survivors
  // unwind with PeerDeadError before writing a file one step ahead of
  // the dead rank's).  It must run at EVERY multi-rank checkpoint —
  // final step included, yield callback installed or not — because a
  // death at the last checkpointed step is just as unresumable.
  const auto prefix = (std::filesystem::temp_directory_path() /
                       "ca_agcm_campaign_barrier")
                          .string();
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg(), ctx, DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    CampaignOptions opt;
    opt.steps = 4;
    opt.checkpoint_every = 2;  // checkpoints at step 2 and the final step 4
    opt.checkpoint_prefix = prefix;
    // Deliberately no should_yield: the barrier must not depend on it.
    EXPECT_EQ(run_campaign(core, &ctx, xi, opt), 4);
    EXPECT_EQ(ctx.stats().phase_totals("service").collective_calls, 2u)
        << "expected one consistency-barrier allreduce per checkpoint";
    std::remove(util::checkpoint_path(prefix, ctx.world_rank()).c_str());
  });
}

TEST(Campaign, ZeroStepsIsANoop) {
  SerialCore core(cfg());
  auto xi = core.make_state();
  core.initialize(xi, {.kind = state::InitialCondition::kZonalJet});
  auto before = core.make_state();
  before.assign(xi, xi.interior());
  CampaignOptions opt;  // steps = 0
  EXPECT_EQ(run_campaign(core, nullptr, xi, opt), 0);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xi, before, xi.interior()),
                   0.0);
}

}  // namespace
}  // namespace ca::core
