// Discrete-event schedule simulator: timeline semantics, overlap,
// collectives, phase accounting, and deadlock detection.
#include <gtest/gtest.h>

#include "perf/event_sim.hpp"
#include "perf/machine.hpp"
#include "perf/schedule.hpp"

namespace ca::perf {
namespace {

MachineModel unit_machine() {
  MachineModel m;
  m.alpha = 1.0;      // 1 s per message
  m.beta = 0.001;     // 1 ms per byte
  m.flop_time = 0.1;  // 0.1 s per flop
  m.collective_round_overhead = 0.0;
  return m;
}

TEST(EventSim, ComputeAdvancesClock) {
  Schedule s(1);
  s.add_compute(0, 50.0, "work");
  auto r = simulate(s, unit_machine());
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
  EXPECT_DOUBLE_EQ(r.ranks[0].phases.at("work").seconds, 5.0);
}

TEST(EventSim, MessageLatencyAndBandwidth) {
  Schedule s(2);
  s.add_isend(0, 1, 1000, "comm");
  s.add_irecv(1, 0, "comm");
  s.add_waitall(1, "comm");
  auto r = simulate(s, unit_machine());
  // Sender: alpha = 1 s.  Receiver waits until 1 + 0.001*1000 = 2 s.
  EXPECT_DOUBLE_EQ(r.ranks[0].total_seconds, 1.0);
  EXPECT_DOUBLE_EQ(r.ranks[1].total_seconds, 2.0);
  EXPECT_EQ(r.ranks[0].phases.at("comm").messages, 1u);
  EXPECT_EQ(r.ranks[0].phases.at("comm").bytes, 1000u);
}

TEST(EventSim, OverlapHidesTransferBehindCompute) {
  // Receiver computes for 10 s while a 2 s message is in flight: the wait
  // should cost nothing.
  Schedule s(2);
  s.add_isend(0, 1, 1000, "comm");
  s.add_irecv(1, 0, "comm");
  s.add_compute(1, 100.0, "inner");
  s.add_waitall(1, "comm");
  auto r = simulate(s, unit_machine());
  EXPECT_DOUBLE_EQ(r.ranks[1].total_seconds, 10.0);
  EXPECT_DOUBLE_EQ(r.ranks[1].phases.at("comm").seconds, 0.0);
}

TEST(EventSim, NoOverlapPaysFullTransfer) {
  Schedule s(2);
  s.add_isend(0, 1, 1000, "comm");
  s.add_irecv(1, 0, "comm");
  s.add_waitall(1, "comm");
  s.add_compute(1, 100.0, "outer");
  auto r = simulate(s, unit_machine());
  EXPECT_DOUBLE_EQ(r.ranks[1].total_seconds, 12.0);
  EXPECT_DOUBLE_EQ(r.ranks[1].phases.at("comm").seconds, 2.0);
}

TEST(EventSim, ExchangeIsSymmetric) {
  Schedule s(2);
  for (int r = 0; r < 2; ++r)
    s.add_exchange(r, {1 - r}, {500}, "halo");
  auto res = simulate(s, unit_machine());
  // Each rank: post recv, isend (1 s), wait until peer's message arrives at
  // 1 + 0.5 = 1.5 s.
  EXPECT_DOUBLE_EQ(res.ranks[0].total_seconds, 1.5);
  EXPECT_DOUBLE_EQ(res.ranks[1].total_seconds, 1.5);
}

TEST(EventSim, CollectiveSynchronizesAtMaxEntry) {
  Schedule s(3);
  const int g = s.add_group({0, 1, 2});
  s.add_compute(0, 10.0, "w");   // ready at 1 s
  s.add_compute(1, 100.0, "w");  // ready at 10 s
  // rank 2 ready at 0 s
  for (int r = 0; r < 3; ++r) s.add_collective(r, g, 3.0, 64, "coll");
  auto res = simulate(s, unit_machine());
  for (int r = 0; r < 3; ++r)
    EXPECT_DOUBLE_EQ(res.ranks[static_cast<std::size_t>(r)].total_seconds,
                     13.0);
  // Rank 2 waited 13 s in the collective; rank 1 only the 3 s cost.
  EXPECT_DOUBLE_EQ(res.ranks[2].phases.at("coll").seconds, 13.0);
  EXPECT_DOUBLE_EQ(res.ranks[1].phases.at("coll").seconds, 3.0);
  EXPECT_EQ(res.ranks[0].phases.at("coll").collectives, 1u);
  EXPECT_EQ(res.ranks[0].phases.at("coll").collective_bytes, 64u);
}

TEST(EventSim, RepeatedCollectivesMatchInOrder) {
  Schedule s(2);
  const int g = s.add_group({0, 1});
  for (int round = 0; round < 5; ++round) {
    s.add_collective(0, g, 1.0, 8, "coll");
    s.add_collective(1, g, 1.0, 8, "coll");
  }
  auto res = simulate(s, unit_machine());
  EXPECT_DOUBLE_EQ(res.makespan, 5.0);
  EXPECT_EQ(res.ranks[0].phases.at("coll").collectives, 5u);
}

TEST(EventSim, DisjointGroupsProceedIndependently) {
  Schedule s(4);
  const int g01 = s.add_group({0, 1});
  const int g23 = s.add_group({2, 3});
  s.add_compute(2, 100.0, "w");
  s.add_collective(0, g01, 1.0, 8, "coll");
  s.add_collective(1, g01, 1.0, 8, "coll");
  s.add_collective(2, g23, 1.0, 8, "coll");
  s.add_collective(3, g23, 1.0, 8, "coll");
  auto res = simulate(s, unit_machine());
  EXPECT_DOUBLE_EQ(res.ranks[0].total_seconds, 1.0);
  EXPECT_DOUBLE_EQ(res.ranks[3].total_seconds, 11.0);
}

TEST(EventSim, FifoChannelOrdering) {
  // Two messages in order on one channel: the second waitall sees the
  // second arrival.
  Schedule s(2);
  s.add_isend(0, 1, 1000, "c");
  s.add_isend(0, 1, 3000, "c");
  s.add_irecv(1, 0, "c");
  s.add_waitall(1, "c");
  s.add_irecv(1, 0, "c");
  s.add_waitall(1, "c");
  auto res = simulate(s, unit_machine());
  // First arrival: 1 + 1 = 2; second sent at t=2 (after two alphas),
  // arrives 2 + 3 = 5.
  EXPECT_DOUBLE_EQ(res.ranks[1].total_seconds, 5.0);
}

TEST(EventSim, MissingMessageDeadlocks) {
  Schedule s(2);
  s.add_irecv(1, 0, "c");
  s.add_waitall(1, "c");
  EXPECT_THROW(simulate(s, unit_machine()), std::runtime_error);
}

TEST(EventSim, PartialCollectiveDeadlocks) {
  Schedule s(3);
  const int g = s.add_group({0, 1, 2});
  s.add_collective(0, g, 1.0, 8, "coll");
  s.add_collective(1, g, 1.0, 8, "coll");
  // rank 2 never joins
  EXPECT_THROW(simulate(s, unit_machine()), std::runtime_error);
}

TEST(EventSim, PhaseAggregates) {
  Schedule s(2);
  s.add_compute(0, 10.0, "a");
  s.add_compute(1, 30.0, "a");
  s.add_compute(1, 10.0, "b");
  auto res = simulate(s, unit_machine());
  EXPECT_DOUBLE_EQ(res.phase_max_seconds("a"), 3.0);
  EXPECT_DOUBLE_EQ(res.phase_avg_seconds("a"), 2.0);
  EXPECT_DOUBLE_EQ(res.phase_max_seconds("b"), 1.0);
  EXPECT_DOUBLE_EQ(res.phase_max_seconds("missing"), 0.0);
  auto names = res.phase_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(EventSim, BadScheduleArgumentsThrow) {
  Schedule s(2);
  EXPECT_THROW(s.add_isend(0, 7, 10, "x"), std::out_of_range);
  EXPECT_THROW(s.add_irecv(0, -2, "x"), std::out_of_range);
  EXPECT_THROW(s.add_group({0, 5}), std::out_of_range);
  EXPECT_THROW(s.add_collective(0, 3, 1.0, 1, "x"), std::out_of_range);
}

}  // namespace
}  // namespace ca::perf
