// The contract that makes the full-scale simulated figures trustworthy:
// the schedule builders must emit exactly the message counts and byte
// volumes the functional runtime produces, for both algorithms, across
// decompositions.
#include <gtest/gtest.h>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/original_core.hpp"
#include "core/schedule_builders.hpp"
#include "perf/event_sim.hpp"

namespace ca::core {
namespace {

DycoreConfig func_config() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 16;
  c.M = 2;
  return c;
}

ScheduleParams model_params(const DycoreConfig& c, perf::ProcGrid grid) {
  ScheduleParams p;
  p.mesh = {c.nx, c.ny, c.nz};
  p.grid = grid;
  p.M = c.M;
  p.steps = 1;
  return p;
}

struct Traffic {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t collectives = 0;
};

/// One steady-state step's traffic of the functional core.
template <typename MakeCore>
Traffic functional_traffic(int p, MakeCore make, int warmup_steps) {
  Traffic out;
  comm::Runtime::run(p, [&](comm::Context& ctx) {
    auto core = make(ctx);
    auto xi = core->make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core->initialize(xi, opt);
    for (int w = 0; w < warmup_steps; ++w) core->step(xi);
    const auto s0 = ctx.stats().grand_totals();
    core->step(xi);
    const auto s1 = ctx.stats().grand_totals();
    if (ctx.world_rank() == 0) {
      // Totals are per-rank; aggregate across ranks via a reduce.
      // Simpler: every rank reports; sum at rank 0 through the world.
    }
    std::vector<std::uint64_t> mine{
        s1.p2p_messages - s0.p2p_messages, s1.p2p_bytes - s0.p2p_bytes,
        s1.collective_calls - s0.collective_calls};
    std::vector<std::uint64_t> total(3);
    // Sum across ranks (collective itself perturbs counts only after we
    // snapshot).
    std::vector<long long> in{static_cast<long long>(mine[0]),
                              static_cast<long long>(mine[1]),
                              static_cast<long long>(mine[2])};
    std::vector<long long> sum(3);
    comm::allreduce<long long>(ctx, ctx.world(), in, sum,
                               comm::ReduceOp::kSum);
    if (ctx.world_rank() == 0) {
      out.messages = static_cast<std::uint64_t>(sum[0]);
      out.bytes = static_cast<std::uint64_t>(sum[1]);
      out.collectives = static_cast<std::uint64_t>(sum[2]);
    }
  });
  return out;
}

Traffic modeled_traffic(const perf::Schedule& schedule) {
  const auto result = perf::simulate(schedule, perf::MachineModel::tianhe2());
  Traffic t;
  t.messages = result.phase_total_messages(kPhaseStencil);
  t.bytes = result.phase_total_bytes(kPhaseStencil);
  for (const auto& r : result.ranks) {
    auto it = r.phases.find(kPhaseCollective);
    if (it != r.phases.end()) t.collectives += it->second.collectives;
  }
  return t;
}

struct MatchCase {
  std::array<int, 3> dims;
  const char* name;
};

class OriginalYZMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(OriginalYZMatch, StencilTrafficMatchesExactly) {
  const auto c = func_config();
  const auto dims = GetParam().dims;
  const int p = dims[0] * dims[1] * dims[2];
  Traffic func = functional_traffic(
      p,
      [&](comm::Context& ctx) {
        return std::make_unique<OriginalCore>(c, ctx, DecompScheme::kYZ,
                                              dims);
      },
      /*warmup=*/0);
  auto sched = build_original_schedule(
      model_params(c, {dims[0], dims[1], dims[2]}), DecompScheme::kYZ,
      perf::MachineModel::tianhe2());
  Traffic model = modeled_traffic(sched);
  EXPECT_EQ(model.messages, func.messages);
  EXPECT_EQ(model.bytes, func.bytes);
  EXPECT_EQ(model.collectives, func.collectives);
}

INSTANTIATE_TEST_SUITE_P(Decomps, OriginalYZMatch,
                         ::testing::Values(MatchCase{{1, 2, 1}, "py2"},
                                           MatchCase{{1, 4, 1}, "py4"},
                                           MatchCase{{1, 1, 2}, "pz2"},
                                           MatchCase{{1, 2, 2}, "py2pz2"},
                                           MatchCase{{1, 4, 2}, "py4pz2"}),
                         [](const ::testing::TestParamInfo<MatchCase>& i) {
                           return i.param.name;
                         });

class OriginalXYMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(OriginalXYMatch, StencilTrafficMatchesExactly) {
  const auto c = func_config();
  const auto dims = GetParam().dims;
  const int p = dims[0] * dims[1] * dims[2];
  Traffic func = functional_traffic(
      p,
      [&](comm::Context& ctx) {
        return std::make_unique<OriginalCore>(c, ctx, DecompScheme::kXY,
                                              dims);
      },
      0);
  auto sched = build_original_schedule(
      model_params(c, {dims[0], dims[1], dims[2]}), DecompScheme::kXY,
      perf::MachineModel::tianhe2());
  Traffic model = modeled_traffic(sched);
  EXPECT_EQ(model.messages, func.messages);
  EXPECT_EQ(model.bytes, func.bytes);
  EXPECT_EQ(model.collectives, func.collectives);
}

INSTANTIATE_TEST_SUITE_P(Decomps, OriginalXYMatch,
                         ::testing::Values(MatchCase{{2, 1, 1}, "px2"},
                                           MatchCase{{2, 2, 1}, "px2py2"},
                                           MatchCase{{4, 2, 1}, "px4py2"}),
                         [](const ::testing::TestParamInfo<MatchCase>& i) {
                           return i.param.name;
                         });

class Original3DMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(Original3DMatch, StencilTrafficMatchesExactly) {
  const auto c = func_config();
  const auto dims = GetParam().dims;
  const int p = dims[0] * dims[1] * dims[2];
  Traffic func = functional_traffic(
      p,
      [&](comm::Context& ctx) {
        return std::make_unique<OriginalCore>(c, ctx, DecompScheme::k3D,
                                              dims);
      },
      0);
  auto sched = build_original_schedule(
      model_params(c, {dims[0], dims[1], dims[2]}), DecompScheme::k3D,
      perf::MachineModel::tianhe2());
  Traffic model = modeled_traffic(sched);
  EXPECT_EQ(model.messages, func.messages);
  EXPECT_EQ(model.bytes, func.bytes);
  EXPECT_EQ(model.collectives, func.collectives);
}

INSTANTIATE_TEST_SUITE_P(Decomps, Original3DMatch,
                         ::testing::Values(MatchCase{{2, 2, 2}, "p2x2x2"},
                                           MatchCase{{2, 2, 4}, "p2x2x4"}),
                         [](const ::testing::TestParamInfo<MatchCase>& i) {
                           return i.param.name;
                         });

class CAMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(CAMatch, StencilTrafficMatchesExactly) {
  const auto c = func_config();
  const auto dims = GetParam().dims;
  const int p = dims[0] * dims[1] * dims[2];
  // Steady-state step (the first step skips the fused smoothing and seeds
  // the column anchors): warm up one step.
  Traffic func = functional_traffic(
      p,
      [&](comm::Context& ctx) { return std::make_unique<CACore>(c, ctx, dims); },
      /*warmup=*/1);
  auto sched = build_ca_schedule(model_params(c, {dims[0], dims[1], dims[2]}),
                                 perf::MachineModel::tianhe2());
  Traffic model = modeled_traffic(sched);
  EXPECT_EQ(model.messages, func.messages);
  EXPECT_EQ(model.bytes, func.bytes);
  EXPECT_EQ(model.collectives, func.collectives);
}

INSTANTIATE_TEST_SUITE_P(Decomps, CAMatch,
                         ::testing::Values(MatchCase{{1, 2, 1}, "py2"},
                                           MatchCase{{1, 2, 2}, "py2pz2"}),
                         [](const ::testing::TestParamInfo<MatchCase>& i) {
                           return i.param.name;
                         });

TEST(ScheduleShape, CAReducesExchangeRoundsTo2) {
  // Count waitall ops per rank per step: original 3M + 4, CA 2.
  ScheduleParams p = model_params(func_config(), {1, 4, 2});
  auto orig = build_original_schedule(p, DecompScheme::kYZ,
                                      perf::MachineModel::tianhe2());
  auto caa = build_ca_schedule(p, perf::MachineModel::tianhe2());
  auto count_waits = [](const perf::Schedule& s, int rank) {
    int n = 0;
    for (const auto& op : s.program(rank))
      if (op.kind == perf::OpKind::kWaitAll) ++n;
    return n;
  };
  EXPECT_EQ(count_waits(orig, 0), 3 * p.M + 4);
  EXPECT_EQ(count_waits(caa, 0), 2);
}

TEST(ScheduleShape, ModeledRuntimeOrderingMatchesPaper) {
  // At the paper's scale the modeled runtimes must order XY > YZ > CA.
  ScheduleParams p;
  p.mesh = {720, 360, 30};
  p.M = 3;
  p.steps = 1;
  const auto m = perf::MachineModel::tianhe2();
  p.grid = {1, 64, 8};
  const double t_yz =
      perf::simulate(build_original_schedule(p, DecompScheme::kYZ, m), m)
          .makespan;
  const double t_ca = perf::simulate(build_ca_schedule(p, m), m).makespan;
  p.grid = {32, 16, 1};
  const double t_xy =
      perf::simulate(build_original_schedule(p, DecompScheme::kXY, m), m)
          .makespan;
  EXPECT_GT(t_xy, t_yz);
  EXPECT_GT(t_yz, t_ca);
}

}  // namespace
}  // namespace ca::core
