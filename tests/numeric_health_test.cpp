// Numerical-health sentinel: blowup detection, poison-free checkpoints,
// and automatic rollback recovery.  The contract under test: a seeded
// corrupt_state fault (an in-memory poke of one prognostic cell) is
// detected within health.cadence steps on every core, the poisoned step
// is never persisted or replicated, the service rolls the job back to
// its last healthy checkpoint under the separate service.numeric_retry
// budget, and the recovered run completes bit-for-bit identical to an
// uninjected one.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "core/dycore_config.hpp"
#include "core/health.hpp"
#include "service/replica.hpp"
#include "service/runner.hpp"
#include "service/service.hpp"
#include "state/state.hpp"
#include "util/checkpoint.hpp"

namespace ca::service {
namespace {

using Clock = std::chrono::steady_clock;

core::DycoreConfig health_config() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

std::string temp_dir(const char* tag) {
  const auto p = std::filesystem::temp_directory_path() /
                 (std::string("ca_numeric_health_") + tag);
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

/// One corrupt_state rule: poke `field` (0=u 1=v 2=phi 3=psa) with `mode`
/// (0=NaN 1=Inf 2=out-of-bounds 1e30) on rank `rank` after the step with
/// 0-based index `step_idx`, on attempt `attempt` only (0 = every
/// attempt).  Fixed-step rules fire deterministically — no seed roll.
comm::FaultPlan poison_plan(int field, int mode, int step_idx,
                            int attempt = 1, int rank = comm::kAnySource) {
  comm::FaultPlan plan(5u);
  comm::FaultRule r;
  r.kind = comm::FaultKind::kCorruptState;
  r.step = step_idx;
  r.attempt = attempt;
  r.src = rank;
  r.param = field * 10 + mode;
  plan.add_rule(r);
  return plan;
}

state::State solo_run(JobSpec spec, const std::string& prefix) {
  spec.faults = comm::FaultPlan();
  spec.checkpoint_every = 0;
  spec.comm = comm::RunOptions{};
  AttemptResult r = run_attempt(spec, 1, 0, prefix, {});
  EXPECT_TRUE(r.completed(spec.steps))
      << "solo reference for '" << spec.name << "' failed: " << r.error;
  return std::move(r.global);
}

void expect_bitwise(const state::State& got, const state::State& want,
                    const std::string& name) {
  ASSERT_GT(want.interior().volume(), 0) << name << ": empty reference";
  const double diff = state::State::max_abs_diff(got, want, want.interior());
  EXPECT_EQ(diff, 0.0) << name << ": recovered run diverged from solo run";
}

/// Pins the sentinel/retry knobs to what the tests set in code: the CI
/// env-override legs flip these globally, and PoolOptions' env courtesy
/// would otherwise override the values the scenarios depend on.
struct ScopedUnsetEnv {
  explicit ScopedUnsetEnv(const char* name) : name_(name) {
    const char* v = ::getenv(name);
    had_ = v != nullptr;
    if (had_) saved_ = v;
    ::unsetenv(name);
  }
  ~ScopedUnsetEnv() {
    if (had_) ::setenv(name_, saved_.c_str(), 1);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

struct PinnedHealthEnv {
  ScopedUnsetEnv cadence{"CA_AGCM_HEALTH_CADENCE"};
  ScopedUnsetEnv warmup{"CA_AGCM_HEALTH_GROWTH_WARMUP"};
  ScopedUnsetEnv retry{"CA_AGCM_SERVICE_NUMERIC_RETRY"};
  ScopedUnsetEnv elastic{"CA_AGCM_SERVICE_ELASTIC"};
  ScopedUnsetEnv replicate{"CA_AGCM_SERVICE_REPLICATE"};
};

// --- sentinel unit behavior ----------------------------------------------

core::GlobalDiag healthy_diag(double scale) {
  core::GlobalDiag d;
  d.quad_energy = scale;
  d.surface_energy = 0.1 * scale;
  d.mass_anomaly = 0.5 * scale;
  d.max_abs_u = 10.0;
  d.max_abs_v = 10.0;
  d.max_abs_phi = 100.0;
  d.max_abs_psa = 100.0;
  return d;
}

TEST(HealthSentinel, SpinUpFromNearZeroDoesNotTripGrowth) {
  core::HealthOptions opts;
  opts.cadence = 1;
  core::HealthSentinel s(opts);
  // A cold-start trajectory: the integrals jump twelve orders of
  // magnitude from a cancellation-near-zero start — exactly what tripped
  // a previous-check ratio detector.  The warmup (default 2) must absorb
  // it.
  EXPECT_EQ(s.check(healthy_diag(1e-10)), "");
  EXPECT_EQ(s.check(healthy_diag(1e2)), "");
  EXPECT_EQ(s.check(healthy_diag(1e4)), "");
  EXPECT_EQ(s.check(healthy_diag(1.5e4)), "");
}

TEST(HealthSentinel, RunawayPastTheRunningScaleTrips) {
  core::HealthOptions opts;
  opts.cadence = 1;
  core::HealthSentinel s(opts);
  EXPECT_EQ(s.check(healthy_diag(1e2)), "");
  EXPECT_EQ(s.check(healthy_diag(1e4)), "");
  EXPECT_EQ(s.check(healthy_diag(1e4)), "");  // warmup done, scale ~1e4
  const std::string v = s.check(healthy_diag(1e7));  // > 100x the scale
  EXPECT_NE(v.find("energy runaway"), std::string::npos) << v;
  // The poisoned check must NOT have become the new scale: the same
  // runaway value trips again instead of being normalized.
  EXPECT_NE(s.check(healthy_diag(1e7)), "");
}

TEST(HealthSentinel, StaticChecksCatchNonFiniteAndBounds) {
  core::HealthOptions opts;
  opts.cadence = 1;
  EXPECT_EQ(core::HealthSentinel::check_static(opts, healthy_diag(1.0)), "");

  core::GlobalDiag nan_integral = healthy_diag(1.0);
  nan_integral.quad_energy = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(core::HealthSentinel::check_static(opts, nan_integral)
                .find("non-finite energy"),
            std::string::npos);

  core::GlobalDiag inf_field = healthy_diag(1.0);
  inf_field.max_abs_phi = std::numeric_limits<double>::infinity();
  EXPECT_NE(core::HealthSentinel::check_static(opts, inf_field)
                .find("non-finite prognostic"),
            std::string::npos);

  core::GlobalDiag wind = healthy_diag(1.0);
  wind.max_abs_u = 2.0 * opts.max_wind;
  EXPECT_NE(core::HealthSentinel::check_static(opts, wind).find("wind bound"),
            std::string::npos);

  core::GlobalDiag psa = healthy_diag(1.0);
  psa.max_abs_psa = 2.0 * opts.max_psa;
  EXPECT_NE(
      core::HealthSentinel::check_static(opts, psa).find("surface-pressure"),
      std::string::npos);
}

// --- detection latency and containment (single attempts) -----------------

TEST(NumericHealth, DetectionWithinTheSentinelCadence) {
  const PinnedHealthEnv pinned;
  const std::string dir = temp_dir("latency");

  JobSpec spec;
  spec.name = "latency";
  spec.core = CoreKind::kSerial;
  spec.config = health_config();
  spec.steps = 9;
  // Poke after 0-based step index 3 = absolute step 4.
  spec.faults = poison_plan(/*field=*/0, /*mode=*/0, /*step_idx=*/3);

  AttemptOptions o;
  o.attempt = 1;
  o.checkpoint_prefix = dir + "/latency";
  o.health.cadence = 3;  // checks at absolute steps 3, 6, 9
  const AttemptResult r = run_attempt(spec, o);

  ASSERT_TRUE(r.numeric) << "sentinel never tripped: " << r.error;
  EXPECT_NE(r.error.find("non-finite"), std::string::npos) << r.error;
  const int corrupted_at = 4;
  EXPECT_GE(r.numeric_step, corrupted_at);
  EXPECT_LE(r.numeric_step, corrupted_at + o.health.cadence)
      << "detection latency exceeded the cadence guarantee";
  EXPECT_EQ(r.numeric_step, 6);  // the first check after the poke
  EXPECT_GE(r.faults.injected_state_corrupt, 1u);
}

TEST(NumericHealth, PoisonedStateIsNeverCheckpointed) {
  const PinnedHealthEnv pinned;
  const std::string dir = temp_dir("containment");

  JobSpec spec;
  spec.name = "containment";
  spec.core = CoreKind::kSerial;
  spec.config = health_config();
  spec.steps = 6;
  spec.checkpoint_every = 1;
  // Out-of-bounds finite poke (the subtle case: no NaN for the sums to
  // catch) after step index 2 = absolute step 3.
  spec.faults = poison_plan(/*field=*/2, /*mode=*/2, /*step_idx=*/2);

  AttemptOptions o;
  o.attempt = 1;
  o.checkpoint_prefix = dir + "/job";
  o.health.cadence = 1;
  const AttemptResult r = run_attempt(spec, o);
  ASSERT_TRUE(r.numeric);
  EXPECT_EQ(r.numeric_step, 3);
  EXPECT_NE(r.error.find("geopotential bound"), std::string::npos) << r.error;

  // The sentinel check gates every write: the per-rank file must hold the
  // LAST HEALTHY step (2), flagged verified — never the poisoned step 3.
  const mesh::LatLonMesh mesh(spec.config.nx, spec.config.ny, spec.config.nz);
  const mesh::DomainDecomp decomp(mesh, {1, 1, 1}, {0, 0, 0});
  state::State xi(spec.config.nx, spec.config.ny, spec.config.nz,
                  core::halos_for_depth(1));
  const util::CheckpointHeader hdr =
      util::read_checkpoint(util::checkpoint_path(o.checkpoint_prefix, 0),
                            mesh, decomp, xi);
  EXPECT_EQ(hdr.step, 2);
  EXPECT_EQ(hdr.health, 1u);
}

// --- detect -> rollback -> bit-for-bit completion, all three cores -------

TEST(NumericHealth, ServiceRollsBackAndCompletesBitwiseOnEveryCore) {
  const PinnedHealthEnv pinned;
  const core::DycoreConfig cfg = health_config();
  const std::string dir = temp_dir("rollback");

  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 4;
  opt.checkpoint_dir = dir;
  ASSERT_EQ(opt.health.cadence, 1) << "service default must be sentinel-on";
  ASSERT_EQ(opt.numeric_retry, 2);

  struct Scenario {
    const char* name;
    CoreKind core;
    std::array<int, 3> dims;
    int field;  // rotate fields and modes across the cores
    int mode;
  };
  const Scenario scenarios[] = {
      {"serial_nan_u", CoreKind::kSerial, {1, 1, 1}, 0, 0},
      {"original_inf_v", CoreKind::kOriginal, {1, 2, 2}, 1, 1},
      {"ca_oob_phi", CoreKind::kCA, {1, 1, 2}, 2, 2},
  };

  EnsembleService svc(opt);
  std::vector<int> ids;
  std::vector<state::State> solo;
  for (const Scenario& sc : scenarios) {
    JobSpec j;
    j.name = sc.name;
    j.core = sc.core;
    j.config = cfg;
    j.dims = sc.dims;
    j.steps = 6;
    j.checkpoint_every = 2;
    // Poke on attempt 1 only, after step index 2 = absolute step 3: the
    // step-2 checkpoint is healthy, the sentinel trips at step 3, and the
    // rollback's attempt 2 reruns 3..6 clean.
    j.faults = poison_plan(sc.field, sc.mode, /*step_idx=*/2, /*attempt=*/1);
    solo.push_back(solo_run(j, dir + "/solo_" + sc.name));
    ids.push_back(svc.submit(j));
  }
  svc.drain();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const JobResult r = svc.result(ids[i]);
    SCOPED_TRACE(::testing::Message() << "job '" << r.name << "'");
    ASSERT_EQ(r.state, JobState::kCompleted) << r.error;
    expect_bitwise(r.final_state, solo[i], r.name);
    EXPECT_EQ(r.metrics.numeric_rollbacks, 1);
    EXPECT_EQ(r.metrics.attempts, 2);
    EXPECT_GE(r.faults.injected_state_corrupt, 1u);
    EXPECT_GE(r.faults.detected_numeric, 1u);
  }

  // Report schema v5: the numeric-health evidence is part of the ledger.
  const util::Json report = svc.report();
  EXPECT_EQ(validate_report(report), "");
  const util::Json* h = report.find("health");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->find("sentinel_enabled")->as_bool());
  EXPECT_EQ(h->find("sentinel_cadence")->as_double(), 1.0);
  EXPECT_EQ(h->find("numeric_rollbacks")->as_double(), 3.0);
  const util::Json* jobs = report.find("jobs");
  ASSERT_NE(jobs, nullptr);
  for (const util::Json& e : jobs->items())
    EXPECT_EQ(e.find("numeric_rollbacks")->as_double(), 1.0);
}

TEST(NumericHealth, NumericRetryBudgetExhaustionFailsTheJob) {
  const PinnedHealthEnv pinned;
  const std::string dir = temp_dir("exhaust");

  ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = dir;
  opt.numeric_retry = 1;

  JobSpec j;
  j.name = "always_poisoned";
  j.core = CoreKind::kSerial;
  j.config = health_config();
  j.steps = 6;
  j.checkpoint_every = 2;
  // attempt = 0: the poke re-fires on EVERY attempt, so no rollback can
  // save the job and the numeric budget must drain.
  j.faults = poison_plan(/*field=*/3, /*mode=*/0, /*step_idx=*/2,
                         /*attempt=*/0);
  // The infrastructure retry budget stays untouched throughout: numeric
  // failures must never consume max_attempts.
  j.max_attempts = 1;

  EnsembleService svc(opt);
  const int id = svc.submit(j);
  svc.drain();

  const JobResult r = svc.result(id);
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_NE(r.error.find("numerical health"), std::string::npos) << r.error;
  // numeric_retry = 1: incident 1 rolls back, incident 2 exhausts.
  EXPECT_EQ(r.metrics.numeric_rollbacks, 2);
  EXPECT_EQ(r.metrics.attempts, 2);

  const util::Json report = svc.report();
  EXPECT_EQ(validate_report(report), "");
  EXPECT_EQ(report.find("service")->find("jobs_failed")->as_double(), 1.0);
}

// --- replica containment --------------------------------------------------

TEST(NumericHealth, ReplicaStoreDropsAPoisonedJobsImages) {
  ReplicaStore store;
  const std::string prefix = "ckpt/jobX";
  std::vector<std::byte> bytes(64, std::byte{0x5a});
  store.deposit(prefix, /*rank=*/0, /*depositor=*/0, 4, 480.0, bytes);
  store.deposit(prefix, /*rank=*/0, /*depositor=*/1, 4, 480.0, bytes);
  store.deposit(prefix, /*rank=*/1, /*depositor=*/1, 4, 480.0, bytes);
  store.deposit("ckpt/jobY", /*rank=*/0, /*depositor=*/0, 4, 480.0, bytes);
  ASSERT_NE(store.fetch(prefix, 0), nullptr);
  ASSERT_NE(store.fetch(prefix, 1), nullptr);

  // A numeric incident invalidates the WHOLE job prefix (every rank,
  // every depositor): any in-memory image of the poisoned trajectory is
  // suspect.  Other jobs' images stay.
  store.erase_prefix(prefix);
  EXPECT_EQ(store.fetch(prefix, 0), nullptr);
  EXPECT_EQ(store.fetch(prefix, 1), nullptr);
  EXPECT_NE(store.fetch("ckpt/jobY", 0), nullptr);
}

}  // namespace
}  // namespace ca::service
