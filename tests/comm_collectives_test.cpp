// Collective algorithms: correctness across rank counts, vector lengths,
// reduction operators, and algorithm variants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/runtime.hpp"

namespace ca::comm {
namespace {

struct CollectiveCase {
  int p;
  int n;
};

class AllreduceSweep : public ::testing::TestWithParam<CollectiveCase> {};

TEST_P(AllreduceSweep, RingMatchesSerialSum) {
  const auto [p, n] = GetParam();
  Runtime::run(p, [p = p, n = n](Context& ctx) {
    std::vector<double> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      in[static_cast<std::size_t>(i)] =
          std::sin(0.1 * i + ctx.world_rank());
    std::vector<double> out(static_cast<std::size_t>(n));
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum,
                      AllreduceAlgorithm::kRing);
    for (int i = 0; i < n; ++i) {
      double expect = 0;
      for (int r = 0; r < p; ++r) expect += std::sin(0.1 * i + r);
      EXPECT_NEAR(out[static_cast<std::size_t>(i)], expect, 1e-12 * p);
    }
  });
}

TEST_P(AllreduceSweep, RecursiveDoublingMatchesSerialSum) {
  const auto [p, n] = GetParam();
  Runtime::run(p, [p = p, n = n](Context& ctx) {
    std::vector<double> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      in[static_cast<std::size_t>(i)] = 0.5 * i - ctx.world_rank();
    std::vector<double> out(static_cast<std::size_t>(n));
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum,
                      AllreduceAlgorithm::kRecursiveDoubling);
    for (int i = 0; i < n; ++i) {
      double expect = 0;
      for (int r = 0; r < p; ++r) expect += 0.5 * i - r;
      EXPECT_NEAR(out[static_cast<std::size_t>(i)], expect, 1e-12 * p);
    }
  });
}

TEST_P(AllreduceSweep, AlgorithmsAgreeWithEachOther) {
  const auto [p, n] = GetParam();
  Runtime::run(p, [n = n](Context& ctx) {
    std::vector<double> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      in[static_cast<std::size_t>(i)] = 1.0 / (1 + i + ctx.world_rank());
    std::vector<double> ring(static_cast<std::size_t>(n)),
        rd(static_cast<std::size_t>(n)), lin(static_cast<std::size_t>(n));
    allreduce<double>(ctx, ctx.world(), in, ring, ReduceOp::kSum,
                      AllreduceAlgorithm::kRing);
    allreduce<double>(ctx, ctx.world(), in, rd, ReduceOp::kSum,
                      AllreduceAlgorithm::kRecursiveDoubling);
    allreduce<double>(ctx, ctx.world(), in, lin, ReduceOp::kSum,
                      AllreduceAlgorithm::kLinearOrdered);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(ring[static_cast<std::size_t>(i)],
                  lin[static_cast<std::size_t>(i)], 1e-13);
      EXPECT_NEAR(rd[static_cast<std::size_t>(i)],
                  lin[static_cast<std::size_t>(i)], 1e-13);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    RankAndLengthSweep, AllreduceSweep,
    ::testing::Values(CollectiveCase{1, 8}, CollectiveCase{2, 1},
                      CollectiveCase{2, 64}, CollectiveCase{3, 7},
                      CollectiveCase{4, 16}, CollectiveCase{5, 33},
                      CollectiveCase{7, 5}, CollectiveCase{8, 128},
                      CollectiveCase{12, 12}, CollectiveCase{16, 100}),
    [](const ::testing::TestParamInfo<CollectiveCase>& info) {
      return "p" + std::to_string(info.param.p) + "_n" +
             std::to_string(info.param.n);
    });

TEST_P(AllreduceSweep, RabenseifnerMatchesLinearOrdered) {
  const auto [p, n] = GetParam();
  Runtime::run(p, [n = n](Context& ctx) {
    std::vector<double> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      in[static_cast<std::size_t>(i)] =
          std::cos(0.2 * i) + 0.1 * ctx.world_rank();
    std::vector<double> rab(static_cast<std::size_t>(n)),
        lin(static_cast<std::size_t>(n));
    allreduce<double>(ctx, ctx.world(), in, rab, ReduceOp::kSum,
                      AllreduceAlgorithm::kRabenseifner);
    allreduce<double>(ctx, ctx.world(), in, lin, ReduceOp::kSum,
                      AllreduceAlgorithm::kLinearOrdered);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(rab[static_cast<std::size_t>(i)],
                  lin[static_cast<std::size_t>(i)], 1e-12);
  });
}

TEST(Collectives, RabenseifnerVolumeMatchesRing) {
  // On a power-of-two communicator Rabenseifner moves the same ~2(p-1)n/p
  // words per rank as the ring but in 2 log2(p) rounds.
  static constexpr int kP = 8;
  static constexpr int kN = 256;
  Runtime::run(kP, [](Context& ctx) {
    ctx.stats().set_phase("rab");
    std::vector<double> in(kN, 1.0), out(kN);
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum,
                      AllreduceAlgorithm::kRabenseifner);
    auto s = ctx.stats().phase_totals("rab");
    const double words =
        static_cast<double>(s.collective_bytes) / sizeof(double);
    const double expected = 2.0 * (kP - 1) * kN / kP;
    EXPECT_NEAR(words, expected, 0.05 * expected);
  });
}

TEST(Collectives, AllreduceMaxMin) {
  Runtime::run(6, [](Context& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in{static_cast<double>(me),
                           static_cast<double>(-me)};
    std::vector<double> mx(2), mn(2);
    allreduce<double>(ctx, ctx.world(), in, mx, ReduceOp::kMax);
    allreduce<double>(ctx, ctx.world(), in, mn, ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(mx[0], 5.0);
    EXPECT_DOUBLE_EQ(mx[1], 0.0);
    EXPECT_DOUBLE_EQ(mn[0], 0.0);
    EXPECT_DOUBLE_EQ(mn[1], -5.0);
  });
}

TEST(Collectives, LinearOrderedIsBitwiseDeterministic) {
  // Summing values whose floating-point sum depends on association order:
  // the linear-ordered algorithm must equal the explicit rank-order fold.
  static constexpr int kP = 7;
  Runtime::run(kP, [](Context& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in{std::pow(10.0, me % 3 == 0 ? 16 : -16) *
                           (me + 1)};
    std::vector<double> out(1);
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum,
                      AllreduceAlgorithm::kLinearOrdered);
    double expect = 0;
    for (int r = 0; r < kP; ++r)
      expect += std::pow(10.0, r % 3 == 0 ? 16 : -16) * (r + 1);
    EXPECT_EQ(out[0], expect);  // bitwise
  });
}

TEST(Collectives, BcastFromEveryRoot) {
  static constexpr int kP = 5;
  for (int root = 0; root < kP; ++root) {
    Runtime::run(kP, [root](Context& ctx) {
      std::vector<int> data(4);
      if (ctx.world_rank() == root) data = {root, root + 1, root + 2, root + 3};
      bcast<int>(ctx, ctx.world(), root, data);
      EXPECT_EQ(data, (std::vector<int>{root, root + 1, root + 2, root + 3}));
    });
  }
}

TEST(Collectives, ReduceToEveryRoot) {
  static constexpr int kP = 6;
  for (int root = 0; root < kP; ++root) {
    Runtime::run(kP, [root](Context& ctx) {
      std::vector<long long> in{ctx.world_rank() + 1LL};
      std::vector<long long> out(1, -999);
      reduce<long long>(ctx, ctx.world(), root, in, out, ReduceOp::kSum);
      if (ctx.world_rank() == root) {
        EXPECT_EQ(out[0], kP * (kP + 1) / 2);
      } else {
        EXPECT_EQ(out[0], -999) << "non-roots must not be written";
      }
    });
  }
}

TEST(Collectives, AllgatherOrdersByRank) {
  static constexpr int kP = 8;
  Runtime::run(kP, [](Context& ctx) {
    std::vector<int> in{10 * ctx.world_rank(), 10 * ctx.world_rank() + 1};
    std::vector<int> out(2 * kP);
    allgather<int>(ctx, ctx.world(), in, out);
    for (int r = 0; r < kP; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r)], 10 * r);
      EXPECT_EQ(out[static_cast<std::size_t>(2 * r + 1)], 10 * r + 1);
    }
  });
}

TEST(Collectives, AlltoallTransposesBlocks) {
  static constexpr int kP = 4;
  Runtime::run(kP, [](Context& ctx) {
    const int me = ctx.world_rank();
    std::vector<int> in(kP), out(kP);
    for (int r = 0; r < kP; ++r)
      in[static_cast<std::size_t>(r)] = 100 * me + r;
    alltoall<int>(ctx, ctx.world(), in, out, 1);
    for (int r = 0; r < kP; ++r)
      EXPECT_EQ(out[static_cast<std::size_t>(r)], 100 * r + me);
  });
}

TEST(Collectives, ExscanPrefix) {
  static constexpr int kP = 9;
  Runtime::run(kP, [](Context& ctx) {
    const int me = ctx.world_rank();
    std::vector<double> in{static_cast<double>(me + 1)};
    std::vector<double> out(1, -1);
    exscan<double>(ctx, ctx.world(), in, out, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(out[0], me * (me + 1) / 2.0);
  });
}

TEST(Collectives, GatherToRoot) {
  static constexpr int kP = 5;
  Runtime::run(kP, [](Context& ctx) {
    std::vector<int> in{7 * ctx.world_rank()};
    std::vector<int> out(ctx.world_rank() == 2 ? kP : 0);
    gather<int>(ctx, ctx.world(), 2, in,
                std::span<int>(out.data(), out.size()));
    if (ctx.world_rank() == 2) {
      for (int r = 0; r < kP; ++r)
        EXPECT_EQ(out[static_cast<std::size_t>(r)], 7 * r);
    }
  });
}

TEST(Collectives, BarrierSeparatesPhases) {
  static constexpr int kP = 8;
  Runtime::run(kP, [](Context& ctx) {
    // Use allreduce as a visible side effect around the barrier: if barrier
    // deadlocks or drops ranks the run would hang / throw.
    std::vector<int> one{1}, out(1);
    for (int round = 0; round < 5; ++round) {
      barrier(ctx, ctx.world());
      allreduce<int>(ctx, ctx.world(), one, out, ReduceOp::kSum);
      EXPECT_EQ(out[0], kP);
    }
  });
}

TEST(Collectives, StatsAttributeCollectiveTraffic) {
  Runtime::run(4, [](Context& ctx) {
    ctx.stats().set_phase("coll");
    std::vector<double> in(64, 1.0), out(64);
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum,
                      AllreduceAlgorithm::kRing);
    auto s = ctx.stats().phase_totals("coll");
    EXPECT_EQ(s.collective_calls, 1u);
    EXPECT_GT(s.collective_bytes, 0u);
    EXPECT_EQ(s.p2p_messages, 0u)
        << "collective-internal sends must not count as user p2p";
  });
}

TEST(Collectives, RingVolumeMatchesTheorem42) {
  // Theorem 4.2: a p-rank summation of n-element vectors moves
  // ~2*(p-1)*n/p words per rank with the ring algorithm.
  static constexpr int kP = 8;
  static constexpr int kN = 256;
  Runtime::run(kP, [](Context& ctx) {
    ctx.stats().set_phase("ring");
    std::vector<double> in(kN, 1.0), out(kN);
    allreduce<double>(ctx, ctx.world(), in, out, ReduceOp::kSum,
                      AllreduceAlgorithm::kRing);
    auto s = ctx.stats().phase_totals("ring");
    const double words_sent =
        static_cast<double>(s.collective_bytes) / sizeof(double);
    const double expected = 2.0 * (kP - 1) * kN / kP;
    EXPECT_NEAR(words_sent, expected, expected * 0.05)
        << "ring allreduce volume should attain the Theorem 4.2 bound";
  });
}

}  // namespace
}  // namespace ca::comm
