// Process-grid selection of the evaluation benches: yz_grid/xy_grid must
// return factorizations of p for EVERY p, not only multiples of 8 /
// perfect squares (regression: p = 100 used to yield py * pz = 96, i.e.
// four ranks silently dropped from the modeled machine).
#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_common.hpp"

namespace ca::bench {
namespace {

TEST(EvalSetupGrids, YzGridPrefersPzEightWhenDivisible) {
  EvalSetup s;
  for (int p : {8, 16, 128, 256, 512, 1024}) {
    const auto g = s.yz_grid(p);
    EXPECT_EQ(g.px, 1);
    EXPECT_EQ(g.pz, 8) << "p = " << p;
    EXPECT_EQ(g.py * g.pz, p) << "p = " << p;
  }
}

TEST(EvalSetupGrids, YzGridFactorizesEveryRankCount) {
  EvalSetup s;
  for (int p = 1; p <= 300; ++p) {
    const auto g = s.yz_grid(p);
    EXPECT_EQ(g.px, 1) << "p = " << p;
    EXPECT_EQ(g.py * g.pz, p) << "yz_grid dropped ranks at p = " << p;
    EXPECT_GE(g.pz, 1);
    EXPECT_LE(g.pz, 8);
  }
  // The old hardcoded {1, p/8, 8} returned 96 ranks for p = 100.
  const auto g = s.yz_grid(100);
  EXPECT_EQ(g.py * g.pz, 100);
  EXPECT_EQ(g.pz, 5);  // largest divisor of 100 that is <= 8
}

TEST(EvalSetupGrids, YzGridRespectsShallowMeshes) {
  EvalSetup s;
  s.mesh.nz = 4;  // fewer levels than the preferred pz of 8
  const auto g = s.yz_grid(64);
  EXPECT_LE(g.pz, 4) << "pz must not exceed the level count";
  EXPECT_EQ(g.py * g.pz, 64);
}

TEST(EvalSetupGrids, XyGridFactorizesEveryRankCount) {
  EvalSetup s;
  for (int p = 1; p <= 300; ++p) {
    const auto g = s.xy_grid(p);
    EXPECT_EQ(g.pz, 1) << "p = " << p;
    EXPECT_EQ(g.px * g.py, p) << "xy_grid dropped ranks at p = " << p;
  }
  // Power-of-two counts keep the near-square split.
  const auto g = s.xy_grid(256);
  EXPECT_EQ(g.px, 16);
  EXPECT_EQ(g.py, 16);
  // Non-squares halve px until it divides p.
  const auto h = s.xy_grid(24);
  EXPECT_EQ(h.px * h.py, 24);
}

TEST(EvalSetupGrids, RejectsNonPositiveRankCounts) {
  EvalSetup s;
  EXPECT_THROW(s.yz_grid(0), std::invalid_argument);
  EXPECT_THROW(s.yz_grid(-8), std::invalid_argument);
  EXPECT_THROW(s.xy_grid(0), std::invalid_argument);
}

}  // namespace
}  // namespace ca::bench
