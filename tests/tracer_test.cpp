// Passive tracer transport: quadratic conservation, zero-flow fixed
// point, and transport by a zonal flow.
#include <gtest/gtest.h>

#include <cmath>

#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/tracer.hpp"

namespace ca::ops {
namespace {

struct Fixture {
  Fixture()
      : core([] {
          core::DycoreConfig c;
          c.nx = 32;
          c.ny = 16;
          c.nz = 8;
          return c;
        }()),
        xi(core.make_state()),
        ws(32, 16, 8, core::halos_for_depth(1)),
        q(32, 16, 8, core::halos_for_depth(1).h3) {
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kZonalJet;
    core.initialize(xi, opt);
    core.fill_boundaries(xi);
    core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                              xi.interior(), ws, false,
                              comm::AllreduceAlgorithm::kAuto, "t");
  }
  core::SerialCore core;
  state::State xi;
  DiagWorkspace ws;
  util::Array3D<double> q;
};

TEST(Tracer, ConstantTracerHasZeroTendencyInNondivergentColumns) {
  // With q == const, the skew form gives dq/dt = -q * div-like residual;
  // for the rest state (all velocities zero) the tendency is exactly 0.
  Fixture f;
  f.xi.fill(0.0);
  f.core.fill_boundaries(f.xi);
  core::compute_diagnostics(f.core.op_context(), nullptr, nullptr, f.xi,
                            f.xi.interior(), f.ws, false,
                            comm::AllreduceAlgorithm::kAuto, "t");
  f.q.fill(4.0);
  TracerAdvection adv(f.core.op_context(), f.xi, f.ws.local, f.ws.vert);
  util::Array3D<double> dq(32, 16, 8, f.q.halo());
  adv.apply(f.q, dq, mesh::Box{0, 32, 0, 16, 0, 8});
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(dq(i, j, k), 0.0);
}

TEST(Tracer, QuadraticInvariantIsConserved) {
  // <q, dq/dt> with the metric weights telescopes to zero (periodic x,
  // zero pole and sigma boundary fluxes) — same proof as the dynamical
  // core's advection.
  Fixture f;
  const auto& ctx = f.core.op_context();
  for (int k = -1; k < 9; ++k)
    for (int j = -2; j < 18; ++j)
      for (int i = -3; i < 35; ++i)
        if (f.q.in_bounds(i, j, k))
          f.q(i, j, k) = std::sin(0.5 * i) * std::cos(0.4 * j) + 0.1 * k;
  fill_tracer_boundaries(ctx, f.q);
  TracerAdvection adv(ctx, f.xi, f.ws.local, f.ws.vert);
  util::Array3D<double> dq(32, 16, 8, f.q.halo());
  adv.apply(f.q, dq, mesh::Box{0, 32, 0, 16, 0, 8});
  double inner = 0.0, scale = 0.0;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j) {
      const double w = ctx.sin_t(j) * ctx.dsig(k);
      for (int i = 0; i < 32; ++i) {
        inner += w * f.q(i, j, k) * dq(i, j, k);
        scale += w * std::abs(f.q(i, j, k) * dq(i, j, k));
      }
    }
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(std::abs(inner), 1e-10 * scale);
}

TEST(Tracer, ZonalFlowTransportsTracerEastward) {
  // A westerly jet must move a localized blob toward larger lambda.
  Fixture f;
  const auto& ctx = f.core.op_context();
  const int j0 = 4, k0 = 2;  // inside the jet
  for (int i = 0; i < 32; ++i)
    f.q(i, j0, k0) = std::exp(-0.5 * std::pow((i - 8) / 2.0, 2));
  fill_tracer_boundaries(ctx, f.q);

  auto centroid = [&] {
    // Circular centroid via phase of the first Fourier mode.
    double cs = 0.0, sn = 0.0;
    for (int i = 0; i < 32; ++i) {
      cs += f.q(i, j0, k0) * std::cos(2.0 * util::kPi * i / 32.0);
      sn += f.q(i, j0, k0) * std::sin(2.0 * util::kPi * i / 32.0);
    }
    return std::atan2(sn, cs);
  };
  const double c0 = centroid();
  advance_tracer(ctx, f.xi, f.ws.local, f.ws.vert, f.q, 200.0, 30);
  const double c1 = centroid();
  double shift = c1 - c0;
  while (shift < -util::kPi) shift += 2.0 * util::kPi;
  while (shift > util::kPi) shift -= 2.0 * util::kPi;
  EXPECT_GT(shift, 0.01) << "westerlies must advect the blob eastward";
  // Total tracer along the circle is conserved by the flux form up to
  // the skew correction (small for smooth q).
  double total = 0.0;
  for (int i = 0; i < 32; ++i) total += f.q(i, j0, k0);
  EXPECT_NEAR(total, std::exp(0.0) * 0.0 + [] {
                double t = 0.0;
                for (int i = 0; i < 32; ++i)
                  t += std::exp(-0.5 * std::pow((i - 8) / 2.0, 2));
                return t;
              }(),
              0.2);
}

TEST(Tracer, StableUnderLongAdvection) {
  Fixture f;
  const auto& ctx = f.core.op_context();
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i)
        f.q(i, j, k) = 1.0 + 0.5 * std::sin(0.39 * i + 0.7 * j - k);
  advance_tracer(ctx, f.xi, f.ws.local, f.ws.vert, f.q, 100.0, 100);
  double mx = 0.0;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i) {
        ASSERT_TRUE(std::isfinite(f.q(i, j, k)));
        mx = std::max(mx, std::abs(f.q(i, j, k)));
      }
  EXPECT_LT(mx, 10.0);
}

TEST(Tracer, UpwindIsMonotone) {
  // A step-function tracer advected by the jet must never develop values
  // outside [min0, max0] under the monotone scheme.
  Fixture f;
  const auto& ctx = f.core.op_context();
  f.q.fill(0.0);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 8; i < 16; ++i) f.q(i, j, k) = 1.0;
  advance_tracer(ctx, f.xi, f.ws.local, f.ws.vert, f.q, 150.0, 60,
                 TracerScheme::kUpwindMonotone);
  double mn = 1e30, mx = -1e30;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i) {
        mn = std::min(mn, f.q(i, j, k));
        mx = std::max(mx, f.q(i, j, k));
      }
  EXPECT_GE(mn, -1e-12) << "monotone scheme must not undershoot";
  EXPECT_LE(mx, 1.0 + 1e-12) << "monotone scheme must not overshoot";
}

TEST(Tracer, CenteredSchemeOvershootsWhereUpwindDoesNot) {
  // The same step function under the skew-symmetric scheme develops
  // over/undershoots (dispersive ripples) — the contrast that motivates
  // the monotone option.
  Fixture f;
  const auto& ctx = f.core.op_context();
  f.q.fill(0.0);
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 8; i < 16; ++i) f.q(i, j, k) = 1.0;
  advance_tracer(ctx, f.xi, f.ws.local, f.ws.vert, f.q, 150.0, 60,
                 TracerScheme::kSkewSymmetric);
  double mn = 1e30, mx = -1e30;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i) {
        mn = std::min(mn, f.q(i, j, k));
        mx = std::max(mx, f.q(i, j, k));
      }
  EXPECT_TRUE(mn < -1e-6 || mx > 1.0 + 1e-6)
      << "a centered scheme on a step must ripple (min " << mn << ", max "
      << mx << ")";
}

TEST(Tracer, UpwindConservesTotalTracer) {
  Fixture f;
  const auto& ctx = f.core.op_context();
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i)
        f.q(i, j, k) = 1.0 + 0.4 * std::sin(0.6 * i + 0.3 * j);
  // Area-dsigma-weighted total (the conserved quantity of the flux form).
  auto total = [&] {
    double t = 0.0;
    for (int k = 0; k < 8; ++k)
      for (int j = 0; j < 16; ++j) {
        const double w = ctx.sin_t(j) * ctx.dsig(k);
        for (int i = 0; i < 32; ++i) t += w * f.q(i, j, k);
      }
    return t;
  };
  const double t0 = total();
  advance_tracer(ctx, f.xi, f.ws.local, f.ws.vert, f.q, 150.0, 40,
                 TracerScheme::kUpwindMonotone);
  EXPECT_NEAR(total() / t0, 1.0, 1e-3)
      << "upwind flux form must conserve the tracer total (pole fluxes "
         "are zero; sigma-dot of this state is weak)";
}

}  // namespace
}  // namespace ca::ops
