// Cartesian topology and communicator splitting.
#include <gtest/gtest.h>

#include <vector>

#include "comm/collectives.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"

namespace ca::comm {
namespace {

TEST(Split, ByParity) {
  Runtime::run(6, [](Context& ctx) {
    const int me = ctx.world_rank();
    Communicator sub = ctx.split(ctx.world(), me % 2, me);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), me / 2);
    // Traffic on sub must not leak to the other color's communicator.
    std::vector<int> in{me}, out(3);
    allgather<int>(ctx, ctx.world(), std::span<const int>(in),
                   std::span<int>(out.data(), 0));  // no-op usage guard
    std::vector<int> gathered(3);
    allgather<int>(ctx, sub, std::span<const int>(in),
                   std::span<int>(gathered));
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(gathered[static_cast<std::size_t>(r)], 2 * r + (me % 2));
  });
}

TEST(Split, NegativeColorOptsOut) {
  Runtime::run(4, [](Context& ctx) {
    const int me = ctx.world_rank();
    Communicator sub = ctx.split(ctx.world(), me == 0 ? -1 : 1, me);
    if (me == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(Split, KeyControlsOrdering) {
  Runtime::run(4, [](Context& ctx) {
    const int me = ctx.world_rank();
    // Reverse the ordering via descending keys.
    Communicator sub = ctx.split(ctx.world(), 0, -me);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.rank(), 3 - me);
  });
}

TEST(Split, NestedSplits) {
  Runtime::run(8, [](Context& ctx) {
    const int me = ctx.world_rank();
    Communicator half = ctx.split(ctx.world(), me / 4, me);
    Communicator quarter = ctx.split(half, half.rank() / 2, half.rank());
    ASSERT_TRUE(quarter.valid());
    EXPECT_EQ(quarter.size(), 2);
    std::vector<int> in{me}, out(2);
    allgather<int>(ctx, quarter, std::span<const int>(in),
                   std::span<int>(out));
    EXPECT_EQ(out[static_cast<std::size_t>(quarter.rank())], me);
  });
}

TEST(Cart, CoordsRoundTrip) {
  Runtime::run(12, [](Context& ctx) {
    auto topo = make_cart(ctx, ctx.world(), {3, 2, 2},
                          {true, false, false});
    EXPECT_EQ(topo.rank_of(topo.coords[0], topo.coords[1], topo.coords[2]),
              ctx.world_rank());
    // x-fastest layout.
    EXPECT_EQ(topo.coords[0], ctx.world_rank() % 3);
    EXPECT_EQ(topo.coords[1], (ctx.world_rank() / 3) % 2);
    EXPECT_EQ(topo.coords[2], ctx.world_rank() / 6);
  });
}

TEST(Cart, PeriodicAndBoundedNeighbors) {
  Runtime::run(8, [](Context& ctx) {
    auto topo = make_cart(ctx, ctx.world(), {1, 4, 2},
                          {true, false, false});
    // y axis is bounded: rank at cy=0 has no -y neighbor.
    if (topo.coords[1] == 0) {
      EXPECT_EQ(topo.neighbor(0, -1, 0), -1);
    }
    if (topo.coords[1] == 3) {
      EXPECT_EQ(topo.neighbor(0, 1, 0), -1);
    }
    if (topo.coords[1] > 0) {
      EXPECT_EQ(topo.neighbor(0, -1, 0), ctx.world_rank() - 1);
    }
    // x axis periodic with px=1: neighbor is self.
    EXPECT_EQ(topo.neighbor(1, 0, 0), ctx.world_rank());
    EXPECT_EQ(topo.neighbor(-1, 0, 0), ctx.world_rank());
  });
}

TEST(Cart, LineCommunicators) {
  Runtime::run(12, [](Context& ctx) {
    auto topo = make_cart(ctx, ctx.world(), {2, 3, 2},
                          {true, false, false});
    ASSERT_TRUE(topo.line_x.valid());
    ASSERT_TRUE(topo.line_y.valid());
    ASSERT_TRUE(topo.line_z.valid());
    EXPECT_EQ(topo.line_x.size(), 2);
    EXPECT_EQ(topo.line_y.size(), 3);
    EXPECT_EQ(topo.line_z.size(), 2);
    // Rank within a line equals the coordinate along that axis.
    EXPECT_EQ(topo.line_x.rank(), topo.coords[0]);
    EXPECT_EQ(topo.line_y.rank(), topo.coords[1]);
    EXPECT_EQ(topo.line_z.rank(), topo.coords[2]);
    // Sum along the z line: every member shares (cx, cy).
    std::vector<int> in{topo.coords[2]}, out(1);
    allreduce<int>(ctx, topo.line_z, std::span<const int>(in),
                   std::span<int>(out), ReduceOp::kSum);
    EXPECT_EQ(out[0], 0 + 1);
  });
}

TEST(Cart, DimsMismatchThrows) {
  EXPECT_THROW(
      Runtime::run(4,
                   [](Context& ctx) {
                     make_cart(ctx, ctx.world(), {3, 2, 1},
                               {false, false, false});
                   }),
      std::invalid_argument);
}

TEST(BalancedDims, YZRespectsLimitsAndFactors) {
  auto d = balanced_dims_yz(8, 180, 15);
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1] * d[2], 8);
  EXPECT_LE(d[2], 15);

  auto big = balanced_dims_yz(1024, 180, 15);
  EXPECT_EQ(big[0], 1);
  EXPECT_EQ(big[1] * big[2], 1024);
  EXPECT_LE(big[1], 180);
  EXPECT_LE(big[2], 15);
}

TEST(BalancedDims, XYPrefersSquare) {
  auto d = balanced_dims_xy(16, 360, 180);
  EXPECT_EQ(d[2], 1);
  EXPECT_EQ(d[0] * d[1], 16);
  EXPECT_EQ(d[0], 4);
  EXPECT_EQ(d[1], 4);
}

TEST(BalancedDims, ImpossibleThrows) {
  EXPECT_THROW(balanced_dims_yz(101, 10, 5), std::invalid_argument);
}

}  // namespace
}  // namespace ca::comm
