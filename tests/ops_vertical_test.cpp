// Vertical integrals of the operator C: divergence, column sums,
// sigma-dot boundary conditions, hydrostatic consistency, and the exact
// agreement of the distributed (z-split) computation with the serial one.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "core/dycore_config.hpp"
#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/tendency.hpp"
#include "ops/vertical.hpp"
#include "util/math.hpp"

namespace ca::ops {
namespace {

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 16;
  c.ny = 12;
  c.nz = 8;
  return c;
}

struct Fixture {
  Fixture() : core(cfg()), xi(core.make_state()),
              ws(cfg().nx, cfg().ny, cfg().nz, core::halos_for_depth(1)) {
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    for (int j = 0; j < xi.lny(); ++j)
      for (int i = 0; i < xi.lnx(); ++i)
        xi.psa()(i, j) = 200.0 * std::sin(0.5 * i - 0.7 * j);
    core.fill_boundaries(xi);
    core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                              xi.interior(), ws, false,
                              comm::AllreduceAlgorithm::kAuto, "t");
  }
  core::SerialCore core;
  state::State xi;
  DiagWorkspace ws;
};

TEST(Vertical, SurfaceFactorsMatchDefinition) {
  Fixture f;
  const auto& strat = f.core.strat();
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 16; ++i) {
      const double pes =
          strat.ps_ref() + f.xi.psa()(i, j) - util::kPressureTop;
      EXPECT_NEAR(f.ws.local.pes(i, j), pes, 1e-9);
      EXPECT_NEAR(f.ws.local.pfac(i, j),
                  std::sqrt(pes / util::kPressureRef), 1e-12);
    }
}

TEST(Vertical, DivergenceOfZonalConstantFlowVanishes) {
  // u = const, v = 0, flat psa: PU is x-uniform so D(P) = 0.
  auto c = cfg();
  core::SerialCore core(c);
  auto xi = core.make_state();
  xi.fill(0.0);
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) xi.u()(i, j, k) = 12.5;
  core.fill_boundaries(xi);
  DiagWorkspace ws(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                            xi.interior(), ws, false,
                            comm::AllreduceAlgorithm::kAuto, "t");
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i)
        EXPECT_NEAR(ws.local.div(i, j, k), 0.0, 1e-14);
}

TEST(Vertical, DivsumIsColumnSumOfDiv) {
  Fixture f;
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 16; ++i) {
      double sum = 0.0;
      for (int k = 0; k < 8; ++k)
        sum += f.core.levels().dsigma(k) * f.ws.local.div(i, j, k);
      EXPECT_NEAR(f.ws.vert.divsum(i, j), sum, 1e-12 * (std::abs(sum) + 1));
    }
}

TEST(Vertical, SigmaDotVanishesAtTopAndSurface) {
  Fixture f;
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 16; ++i) {
      EXPECT_NEAR(f.ws.vert.sdot(i, j, 0), 0.0, 1e-12)
          << "sigma-dot must vanish at the model top";
      EXPECT_NEAR(f.ws.vert.sdot(i, j, 8), 0.0, 1e-9)
          << "sigma-dot must vanish at the surface";
    }
}

TEST(Vertical, WIsPfacTimesSigmaDot) {
  Fixture f;
  for (int k = 0; k <= 8; ++k)
    for (int j = 0; j < 12; ++j)
      for (int i = 0; i < 16; ++i)
        EXPECT_NEAR(f.ws.vert.w(i, j, k),
                    f.ws.local.pfac(i, j) * f.ws.vert.sdot(i, j, k), 1e-12);
}

TEST(Vertical, PhiGeoVanishesForZeroPhi) {
  auto c = cfg();
  core::SerialCore core(c);
  auto xi = core.make_state();
  xi.fill(0.0);
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) xi.u()(i, j, k) = 3.0 * k;
  core.fill_boundaries(xi);
  DiagWorkspace ws(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                            xi.interior(), ws, false,
                            comm::AllreduceAlgorithm::kAuto, "t");
  for (int k = 0; k < c.nz; ++k)
    EXPECT_NEAR(ws.vert.phi_geo(3, 3, k), 0.0, 1e-14);
}

TEST(Vertical, WarmColumnRaisesGeopotentialAloft) {
  // A positive (warm) Phi column gives phi' increasing upward and ~0 at
  // the surface half-step scale.
  auto c = cfg();
  core::SerialCore core(c);
  auto xi = core.make_state();
  xi.fill(0.0);
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) xi.phi()(i, j, k) = 5.0;
  core.fill_boundaries(xi);
  DiagWorkspace ws(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  core::compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                            xi.interior(), ws, false,
                            comm::AllreduceAlgorithm::kAuto, "t");
  for (int k = 0; k + 1 < c.nz; ++k)
    EXPECT_GT(ws.vert.phi_geo(5, 5, k), ws.vert.phi_geo(5, 5, k + 1))
        << "phi' must increase upward in a warm column";
  EXPECT_GT(ws.vert.phi_geo(5, 5, c.nz - 1), 0.0);
}

TEST(Vertical, HydrostaticIncrementMatchesManualFormula) {
  Fixture f;
  const auto& ctx = f.core.op_context();
  const int i = 4, j = 6, m = 3;
  const double b = util::kGravityWaveSpeed;
  const double expect = b * 0.5 *
                        (f.xi.phi()(i, j, m - 1) + f.xi.phi()(i, j, m)) /
                        (f.ws.local.pfac(i, j) * ctx.sig_half(m)) *
                        (ctx.sig(m) - ctx.sig(m - 1));
  EXPECT_NEAR(hydrostatic_increment(ctx, f.xi, f.ws.local, i, j, m), expect,
              1e-12 * (std::abs(expect) + 1));
}

class ZSplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZSplitSweep, DistributedColumnsMatchSerial) {
  const int pz = GetParam();
  Fixture ref;
  comm::Runtime::run(pz, [&](comm::Context& cc) {
    auto topo = comm::make_cart(cc, cc.world(), {1, 1, pz},
                                {true, false, false});
    auto c = cfg();
    mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
    auto levels = mesh::SigmaLevels::uniform(c.nz);
    state::Stratification strat(levels);
    mesh::DomainDecomp d(mesh, {1, 1, pz}, topo.coords);
    OpContext ctx{&mesh, &levels, &strat, &d, ModelParams{}};
    state::State xi(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
    // Copy the serial fixture's state slice (including z halos).
    const auto h = xi.u().halo();
    for (int k = -h.z; k < d.lnz() + h.z; ++k) {
      const int gk = d.gk(k);
      if (gk < -1 || gk > c.nz) continue;
      const int gkc = std::min(std::max(gk, -1), c.nz);
      for (int j = -h.y; j < d.lny() + h.y; ++j)
        for (int i = -h.x; i < d.lnx() + h.x; ++i) {
          xi.u()(i, j, k) = ref.xi.u()(i, j, gkc);
          xi.v()(i, j, k) = ref.xi.v()(i, j, gkc);
          xi.phi()(i, j, k) = ref.xi.phi()(i, j, gkc);
        }
    }
    for (int j = -xi.psa().hy(); j < d.lny() + xi.psa().hy(); ++j)
      for (int i = -xi.psa().hx(); i < d.lnx() + xi.psa().hx(); ++i)
        xi.psa()(i, j) = ref.xi.psa()(i, j);

    DiagWorkspace ws(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
    core::compute_diagnostics(ctx, &cc, &topo.line_z, xi, xi.interior(),
                              ws, false, comm::AllreduceAlgorithm::kAuto,
                              "t");
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) {
          EXPECT_NEAR(ws.vert.sdot(i, j, k),
                      ref.ws.vert.sdot(i, j, d.gk(k)), 1e-12);
          EXPECT_NEAR(ws.vert.phi_geo(i, j, k),
                      ref.ws.vert.phi_geo(i, j, d.gk(k)), 1e-9);
          EXPECT_NEAR(ws.vert.divsum(i, j), ref.ws.vert.divsum(i, j),
                      1e-12);
        }
  });
}

INSTANTIATE_TEST_SUITE_P(Pz, ZSplitSweep, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "pz" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace ca::ops
