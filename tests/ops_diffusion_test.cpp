// Horizontal diffusion: Laplacian correctness, dissipation, constancy
// preservation, stability bound.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.hpp"
#include "core/serial_core.hpp"
#include "ops/diffusion.hpp"
#include "util/math.hpp"

namespace ca::ops {
namespace {

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 32;
  c.ny = 16;
  c.nz = 4;
  return c;
}

TEST(Diffusion, LaplacianOfConstantIsZero) {
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  xi.fill(5.0);
  core.fill_boundaries(xi);
  for (int j = 1; j < 15; ++j)
    for (int i = 0; i < 32; ++i)
      EXPECT_NEAR(laplacian_at(core.op_context(), xi.phi(), i, j, 1), 0.0,
                  1e-18);
}

TEST(Diffusion, LaplacianOfZonalHarmonicHasRightEigenvalue) {
  // f = cos(m lambda): del2 f = -m^2/(a^2 sin^2) f; compare at a
  // mid-latitude row against the discrete eigenvalue
  // -(2 - 2cos(m dl))/(dl^2 a^2 sin^2).
  core::SerialCore core(cfg());
  const auto& ctx = core.op_context();
  auto xi = core.make_state();
  xi.fill(0.0);
  const int m = 3, j = 8, k = 1;
  for (int i = 0; i < 32; ++i)
    xi.phi()(i, j, k) = std::cos(2.0 * util::kPi * m * i / 32.0);
  core.fill_boundaries(xi);
  const double dl = ctx.mesh->dlambda();
  const double sj = ctx.sin_t(j);
  const double a = ctx.mesh->radius();
  const double eig =
      -(2.0 - 2.0 * std::cos(m * dl)) / (dl * dl * a * a * sj * sj);
  for (int i = 0; i < 32; ++i) {
    // y part contributes 0 only when the row's neighbors are zero — here
    // rows j±1 are zero, so the y term is a (sin) difference of the row
    // itself; evaluate the pure-x prediction plus that correction.
    const double lap = laplacian_at(ctx, xi.phi(), i, j, k);
    const double y_term =
        (ctx.sin_tv(j) * (0.0 - xi.phi()(i, j, k)) -
         ctx.sin_tv(j - 1) * (xi.phi()(i, j, k) - 0.0)) /
        (ctx.mesh->dtheta() * ctx.mesh->dtheta() * sj * a * a);
    EXPECT_NEAR(lap, eig * xi.phi()(i, j, k) + y_term,
                1e-12 * (std::abs(eig) + 1.0));
  }
}

TEST(Diffusion, DampsEnergyMonotonically) {
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  const double nu = 1.0e5;
  const double dt =
      std::min(600.0, 0.9 * diffusion_stable_dt(core.op_context(), nu));
  double prev = core::local_diagnostics(core.op_context(), xi).quad_energy;
  for (int step = 0; step < 5; ++step) {
    core.fill_boundaries(xi);
    apply_horizontal_diffusion(core.op_context(), xi, nu, dt);
    const double e =
        core::local_diagnostics(core.op_context(), xi).quad_energy;
    EXPECT_LT(e, prev) << "diffusion must strictly dissipate";
    prev = e;
  }
}

TEST(Diffusion, ZeroCoefficientIsIdentity) {
  core::SerialCore core(cfg());
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  auto copy = core.make_state();
  copy.assign(xi, xi.interior());
  apply_horizontal_diffusion(core.op_context(), xi, 0.0, 600.0);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xi, copy, xi.interior()),
                   0.0);
}

TEST(Diffusion, StableDtScalesInverselyWithNu) {
  core::SerialCore core(cfg());
  const double d1 = diffusion_stable_dt(core.op_context(), 1e5);
  const double d2 = diffusion_stable_dt(core.op_context(), 2e5);
  EXPECT_NEAR(d1 / d2, 2.0, 1e-12);
  EXPECT_TRUE(std::isinf(diffusion_stable_dt(core.op_context(), 0.0)));
}

}  // namespace
}  // namespace ca::ops
