// Held-Suarez forcing: coefficient profiles, equilibrium temperature
// structure, and relaxation behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "core/serial_core.hpp"
#include "physics/held_suarez.hpp"
#include "state/transforms.hpp"
#include "util/math.hpp"

namespace ca::physics {
namespace {

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 10;
  return c;
}

TEST(HeldSuarez, FrictionOnlyInBoundaryLayer) {
  core::SerialCore core(cfg());
  HeldSuarezForcing hs(core.op_context());
  EXPECT_DOUBLE_EQ(hs.k_v(0.2), 0.0);
  EXPECT_DOUBLE_EQ(hs.k_v(0.7), 0.0);
  EXPECT_GT(hs.k_v(0.85), 0.0);
  EXPECT_NEAR(hs.k_v(1.0), hs.params().k_f, 1e-18);
  EXPECT_LT(hs.k_v(0.85), hs.k_v(0.95));
}

TEST(HeldSuarez, ThermalRelaxationFasterAtTropicalSurface) {
  core::SerialCore core(cfg());
  HeldSuarezForcing hs(core.op_context());
  const int equator = 8, pole = 0;
  // Free atmosphere: uniform k_a.
  EXPECT_NEAR(hs.k_t(equator, 0.3), hs.params().k_a, 1e-18);
  EXPECT_NEAR(hs.k_t(pole, 0.3), hs.params().k_a, 1e-18);
  // Surface layer: much faster at the equator (cos^4 phi).
  EXPECT_GT(hs.k_t(equator, 1.0), 5.0 * hs.k_t(pole, 1.0));
  EXPECT_LE(hs.k_t(equator, 1.0), hs.params().k_s + 1e-18);
}

TEST(HeldSuarez, EquilibriumTemperatureStructure) {
  core::SerialCore core(cfg());
  HeldSuarezForcing hs(core.op_context());
  const int equator = 8, pole = 0;
  const double p_sfc = 1.0e5;
  // Warm equator, cold pole at the surface, with the H-S 60 K contrast.
  const double te_eq = hs.t_eq(equator, p_sfc);
  const double te_po = hs.t_eq(pole, p_sfc);
  EXPECT_GT(te_eq, te_po);
  EXPECT_NEAR(te_eq, 315.0, 2.0);  // sin(phi)~0 at the equator row
  // Stratospheric floor.
  EXPECT_DOUBLE_EQ(hs.t_eq(equator, 5.0e3), 200.0);
  // Colder aloft than at the surface.
  EXPECT_LT(hs.t_eq(equator, 5.0e4), te_eq);
}

TEST(HeldSuarez, FrictionDampsLowLevelWindsOnly) {
  core::SerialCore core(cfg());
  HeldSuarezForcing hs(core.op_context());
  auto xi = core.make_state();
  xi.fill(0.0);
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 24; ++i) xi.u()(i, j, k) = 10.0;
  hs.apply(xi, 86400.0);
  // sigma(k=0) ~ 0.05: untouched; sigma(k=9) ~ 0.95: damped.
  EXPECT_NEAR(xi.u()(3, 3, 0), 10.0, 1e-9);
  EXPECT_LT(xi.u()(3, 3, 9), 10.0 * std::exp(-0.5));
  EXPECT_GT(xi.u()(3, 3, 9), 0.0);
}

TEST(HeldSuarez, TemperatureRelaxesTowardEquilibrium) {
  core::SerialCore core(cfg());
  HeldSuarezForcing hs(core.op_context());
  auto xi = core.make_state();
  xi.fill(0.0);  // T = T~ everywhere
  const auto& ctx = core.op_context();
  const int i = 5, j = 8, k = 9;
  const double sigma = ctx.sig(k);
  const double p = util::kPressureTop +
                   sigma * (core.strat().ps_ref() - util::kPressureTop);
  const double t0 = core.strat().t_ref(k);
  const double te = hs.t_eq(j, p);
  // Long relaxation: T must approach T_eq monotonically.
  double prev_gap = std::abs(t0 - te);
  for (int step = 0; step < 4; ++step) {
    hs.apply(xi, 10.0 * 86400.0);
    const double pc = state::p_factor_s(xi.psa(), core.strat(), i, j);
    const double t_now =
        t0 + util::kGravityWaveSpeed * xi.phi()(i, j, k) /
                 (pc * util::kRd);
    const double gap = std::abs(t_now - te);
    EXPECT_LT(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.2 * std::abs(t0 - te))
      << "40 days at k_s-scale rates must close most of the gap";
}

TEST(HeldSuarez, EquilibriumStateIsSteadyUnderForcing) {
  // A state already at T_eq with no winds must be (exactly) unchanged.
  core::SerialCore core(cfg());
  HeldSuarezForcing hs(core.op_context());
  auto xi = core.make_state();
  xi.fill(0.0);
  const auto& ctx = core.op_context();
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 24; ++i) {
        const double sigma = ctx.sig(k);
        const double p =
            util::kPressureTop +
            sigma * (core.strat().ps_ref() - util::kPressureTop);
        const double pc = state::p_factor_s(xi.psa(), core.strat(), i, j);
        xi.phi()(i, j, k) = pc * util::kRd *
                            (hs.t_eq(j, p) - core.strat().t_ref(k)) /
                            util::kGravityWaveSpeed;
      }
  auto before = core.make_state();
  before.assign(xi, xi.interior());
  hs.apply(xi, 86400.0);
  EXPECT_LT(state::State::max_abs_diff(xi, before, xi.interior()), 1e-10);
}

}  // namespace
}  // namespace ca::physics
