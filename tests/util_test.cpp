// Array containers, config parsing, timers, math helpers.
#include <gtest/gtest.h>

#include <thread>

#include "util/array3d.hpp"
#include "util/config.hpp"
#include "util/math.hpp"
#include "util/timer.hpp"

namespace ca::util {
namespace {

TEST(Array3D, IndexingWithHalos) {
  Array3D<double> a(4, 3, 2, {2, 1, 1});
  EXPECT_EQ(a.ex(), 8);
  EXPECT_EQ(a.ey(), 5);
  EXPECT_EQ(a.ez(), 4);
  EXPECT_EQ(a.size(), 8u * 5u * 4u);
  a(-2, -1, -1) = 1.0;
  a(5, 3, 2) = 2.0;
  a(0, 0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(a(-2, -1, -1), 1.0);
  EXPECT_DOUBLE_EQ(a(5, 3, 2), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 3.0);
}

TEST(Array3D, XIsContiguous) {
  Array3D<double> a(5, 3, 2, {1, 0, 0});
  EXPECT_EQ(a.index(1, 0, 0) - a.index(0, 0, 0), 1u);
  auto line = a.line(1, 1);
  EXPECT_EQ(line.size(), 5u);
  line[2] = 42.0;
  EXPECT_DOUBLE_EQ(a(2, 1, 1), 42.0);
}

TEST(Array3D, FillAndEquality) {
  Array3D<int> a(3, 3, 3), b(3, 3, 3);
  a.fill(7);
  b.fill(7);
  EXPECT_EQ(a, b);
  b(1, 1, 1) = 8;
  EXPECT_FALSE(a == b);
}

TEST(Array3D, CopyInteriorIgnoresHalos) {
  Array3D<double> src(3, 3, 2, {1, 1, 1});
  src.fill(-1.0);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i) src(i, j, k) = i + 10 * j + 100 * k;
  Array3D<double> dst(3, 3, 2, {2, 2, 2});
  dst.copy_interior_from(src);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(dst(i, j, k), i + 10 * j + 100 * k);
  EXPECT_DOUBLE_EQ(dst(-1, 0, 0), 0.0) << "halos must stay untouched";
}

TEST(Array2D, IndexingWithHalos) {
  Array2D<double> a(4, 3, 1, 2);
  a(-1, -2) = 5.0;
  a(4, 4) = 6.0;
  EXPECT_DOUBLE_EQ(a(-1, -2), 5.0);
  EXPECT_DOUBLE_EQ(a(4, 4), 6.0);
  EXPECT_EQ(a.size(), 6u * 7u);
}

TEST(Config, ParsesTextWithComments) {
  auto cfg = Config::from_text(R"(
# run parameters
nx = 720
dt = 450.0   # seconds
name = hs_test
verbose = true
)");
  EXPECT_EQ(cfg.get_int("nx", -1), 720);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt", 0.0), 450.0);
  EXPECT_EQ(cfg.get_string("name"), "hs_test");
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_EQ(cfg.get_int("missing", 9), 9);
}

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "nx=100", "flag", "ratio=0.5"};
  auto cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("nx", -1), 100);
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0.0), 0.5);
  EXPECT_FALSE(cfg.has("flag"));
}

TEST(Config, EnvOverrideWins) {
  setenv("CA_AGCM_STEPS", "77", 1);
  auto cfg = Config::from_text("steps = 5");
  EXPECT_EQ(cfg.get_int("steps", -1), 77);
  unsetenv("CA_AGCM_STEPS");
  EXPECT_EQ(cfg.get_int("steps", -1), 5);
}

TEST(Config, MalformedValuesFallBack) {
  auto cfg = Config::from_text("n = abc\nb = maybe");
  EXPECT_EQ(cfg.get_int("n", 3), 3);
  EXPECT_TRUE(cfg.get_bool("b", true));
  EXPECT_FALSE(cfg.get_bool("b", false));
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.005);
  t.reset();
  EXPECT_LT(t.seconds(), 0.005);
}

TEST(PhaseTimers, AccumulatesByPhase) {
  PhaseTimers pt;
  pt.start("a");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pt.start("b");  // implicitly stops "a"
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pt.stop();
  EXPECT_GE(pt.total("a"), 0.002);
  EXPECT_GE(pt.total("b"), 0.002);
  EXPECT_DOUBLE_EQ(pt.total("c"), 0.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total("a"), 0.0);
}

TEST(Math, FloorDivAndMod) {
  EXPECT_EQ(floor_div(7, 3), 2);
  EXPECT_EQ(floor_div(-7, 3), -3);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(pos_mod(7, 3), 1);
  EXPECT_EQ(pos_mod(-7, 3), 2);
  EXPECT_EQ(pos_mod(-6, 3), 0);
}

TEST(Math, CloseHelper) {
  EXPECT_TRUE(close(1.0, 1.0 + 1e-15));
  EXPECT_FALSE(close(1.0, 1.001));
  EXPECT_TRUE(close(0.0, 1e-15));
}

}  // namespace
}  // namespace ca::util
