// Array containers, config parsing, JSON, timers, math helpers.
#include <gtest/gtest.h>

#include <thread>

#include "comm/runtime.hpp"
#include "obs/trace.hpp"
#include "service/worker_pool.hpp"
#include "util/array3d.hpp"
#include "util/config.hpp"
#include "util/json.hpp"
#include "util/math.hpp"
#include "util/timer.hpp"

namespace ca::util {
namespace {

TEST(Array3D, IndexingWithHalos) {
  Array3D<double> a(4, 3, 2, {2, 1, 1});
  EXPECT_EQ(a.ex(), 8);
  EXPECT_EQ(a.ey(), 5);
  EXPECT_EQ(a.ez(), 4);
  EXPECT_EQ(a.size(), 8u * 5u * 4u);
  a(-2, -1, -1) = 1.0;
  a(5, 3, 2) = 2.0;
  a(0, 0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(a(-2, -1, -1), 1.0);
  EXPECT_DOUBLE_EQ(a(5, 3, 2), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 0, 0), 3.0);
}

TEST(Array3D, XIsContiguous) {
  Array3D<double> a(5, 3, 2, {1, 0, 0});
  EXPECT_EQ(a.index(1, 0, 0) - a.index(0, 0, 0), 1u);
  auto line = a.line(1, 1);
  EXPECT_EQ(line.size(), 5u);
  line[2] = 42.0;
  EXPECT_DOUBLE_EQ(a(2, 1, 1), 42.0);
}

TEST(Array3D, FillAndEquality) {
  Array3D<int> a(3, 3, 3), b(3, 3, 3);
  a.fill(7);
  b.fill(7);
  EXPECT_EQ(a, b);
  b(1, 1, 1) = 8;
  EXPECT_FALSE(a == b);
}

TEST(Array3D, CopyInteriorIgnoresHalos) {
  Array3D<double> src(3, 3, 2, {1, 1, 1});
  src.fill(-1.0);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i) src(i, j, k) = i + 10 * j + 100 * k;
  Array3D<double> dst(3, 3, 2, {2, 2, 2});
  dst.copy_interior_from(src);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j)
      for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(dst(i, j, k), i + 10 * j + 100 * k);
  EXPECT_DOUBLE_EQ(dst(-1, 0, 0), 0.0) << "halos must stay untouched";
}

TEST(Array2D, IndexingWithHalos) {
  Array2D<double> a(4, 3, 1, 2);
  a(-1, -2) = 5.0;
  a(4, 4) = 6.0;
  EXPECT_DOUBLE_EQ(a(-1, -2), 5.0);
  EXPECT_DOUBLE_EQ(a(4, 4), 6.0);
  EXPECT_EQ(a.size(), 6u * 7u);
}

TEST(Config, ParsesTextWithComments) {
  auto cfg = Config::from_text(R"(
# run parameters
nx = 720
dt = 450.0   # seconds
name = hs_test
verbose = true
)");
  EXPECT_EQ(cfg.get_int("nx", -1), 720);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt", 0.0), 450.0);
  EXPECT_EQ(cfg.get_string("name"), "hs_test");
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_EQ(cfg.get_int("missing", 9), 9);
}

TEST(Config, ParsesArgs) {
  const char* argv[] = {"prog", "nx=100", "flag", "ratio=0.5"};
  auto cfg = Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("nx", -1), 100);
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0.0), 0.5);
  EXPECT_FALSE(cfg.has("flag"));
}

TEST(Config, EnvOverrideWins) {
  setenv("CA_AGCM_STEPS", "77", 1);
  auto cfg = Config::from_text("steps = 5");
  EXPECT_EQ(cfg.get_int("steps", -1), 77);
  unsetenv("CA_AGCM_STEPS");
  EXPECT_EQ(cfg.get_int("steps", -1), 5);
}

TEST(Config, MalformedValuesRaiseTypedErrors) {
  // A PRESENT but unparseable value must raise, not silently become the
  // fallback: "n = 1O" is a typo the user needs to hear about.
  auto cfg = Config::from_text(
      "n = abc\ntrail = 10x\nfrac = 3.5\nd = 1.5ghz\nb = maybe");
  EXPECT_THROW(cfg.get_int("n", 3), ConfigError);
  EXPECT_THROW(cfg.get_int("trail", 3), ConfigError);
  EXPECT_THROW(cfg.get_int("frac", 3), ConfigError);   // no truncation
  EXPECT_THROW(cfg.get_long("trail", 3), ConfigError);
  EXPECT_THROW(cfg.get_double("d", 1.0), ConfigError);
  // The error carries the key and offending value.
  try {
    cfg.get_int("trail", 3);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.key, "trail");
    EXPECT_EQ(e.value, "10x");
  }
  // Missing keys still fall back quietly.
  EXPECT_EQ(cfg.get_int("absent", 9), 9);
  EXPECT_DOUBLE_EQ(cfg.get_double("absent", 2.5), 2.5);
  // Bools keep their permissive fallback behavior.
  EXPECT_TRUE(cfg.get_bool("b", true));
  EXPECT_FALSE(cfg.get_bool("b", false));
}

TEST(Config, WellFormedValuesStillParse) {
  auto cfg = Config::from_text("n = 42\nneg = -7\nd =  2.5e3 ");
  EXPECT_EQ(cfg.get_int("n", -1), 42);
  EXPECT_EQ(cfg.get_int("neg", -1), -7);
  EXPECT_DOUBLE_EQ(cfg.get_double("d", 0.0), 2500.0);
}

TEST(Config, EnvNameFoldsSeparators) {
  // '.' and '-' are illegal in POSIX env names; both must fold to '_'.
  EXPECT_EQ(Config::env_name("comm.max_resends"), "CA_AGCM_COMM_MAX_RESENDS");
  EXPECT_EQ(Config::env_name("faults.delay-polls"),
            "CA_AGCM_FAULTS_DELAY_POLLS");
  EXPECT_EQ(Config::env_name("steps"), "CA_AGCM_STEPS");
}

TEST(Config, NamespacedEnvOverrideWins) {
  // Regression: namespaced keys used to map to CA_AGCM_COMM.MAX_RESENDS,
  // which no shell can export, so the override silently never applied.
  setenv("CA_AGCM_COMM_MAX_RESENDS", "7", 1);
  auto cfg = Config::from_text("comm.max_resends = 2");
  EXPECT_EQ(cfg.get_int("comm.max_resends", -1), 7);
  unsetenv("CA_AGCM_COMM_MAX_RESENDS");
  EXPECT_EQ(cfg.get_int("comm.max_resends", -1), 2);
}

TEST(Config, EnvOverrideReachesCommRuntime) {
  // End-to-end: the exported name must reach RunOptions::from_config.
  setenv("CA_AGCM_COMM_MAX_RESENDS", "5", 1);
  setenv("CA_AGCM_COMM_TIMEOUT_MS", "1234", 1);
  Config cfg;  // empty: everything comes from the environment
  const auto opts = comm::RunOptions::from_config(cfg);
  EXPECT_EQ(opts.max_resends, 5);
  EXPECT_EQ(opts.recv_timeout, std::chrono::milliseconds(1234));
  unsetenv("CA_AGCM_COMM_MAX_RESENDS");
  unsetenv("CA_AGCM_COMM_TIMEOUT_MS");
}

TEST(Config, FailureToleranceKeysFoldAndOverride) {
  // The rank-failure knobs are documented as env-overridable; pin both
  // the folded names and the end-to-end override path.
  EXPECT_EQ(Config::env_name("comm.heartbeat_timeout"),
            "CA_AGCM_COMM_HEARTBEAT_TIMEOUT");
  EXPECT_EQ(Config::env_name("service.max_rank_strikes"),
            "CA_AGCM_SERVICE_MAX_RANK_STRIKES");
  EXPECT_EQ(Config::env_name("service.aging_rate"),
            "CA_AGCM_SERVICE_AGING_RATE");

  setenv("CA_AGCM_COMM_HEARTBEAT_TIMEOUT", "450", 1);
  setenv("CA_AGCM_SERVICE_MAX_RANK_STRIKES", "5", 1);
  setenv("CA_AGCM_SERVICE_AGING_RATE", "0.75", 1);
  // Stored entries exist but the environment must win over them.
  auto cfg = Config::from_text(
      "comm.heartbeat_timeout = 100\n"
      "service.max_rank_strikes = 1\n"
      "service.aging_rate = 0.0\n");
  const auto comm_opts = comm::RunOptions::from_config(cfg);
  EXPECT_EQ(comm_opts.heartbeat_timeout, std::chrono::milliseconds(450));
  const auto pool_opts = service::PoolOptions::from_config(cfg);
  EXPECT_EQ(pool_opts.max_rank_strikes, 5);
  EXPECT_DOUBLE_EQ(pool_opts.aging_rate, 0.75);
  unsetenv("CA_AGCM_COMM_HEARTBEAT_TIMEOUT");
  unsetenv("CA_AGCM_SERVICE_MAX_RANK_STRIKES");
  unsetenv("CA_AGCM_SERVICE_AGING_RATE");
  // With the environment cleared, the stored entries apply again.
  EXPECT_EQ(comm::RunOptions::from_config(cfg).heartbeat_timeout,
            std::chrono::milliseconds(100));
  EXPECT_EQ(service::PoolOptions::from_config(cfg).max_rank_strikes, 1);
}

TEST(Config, NumericHealthKeysFoldAndOverride) {
  // The sentinel knobs and the rollback budget are documented as
  // env-overridable; pin the folded names and the end-to-end path into
  // HealthOptions / PoolOptions.
  EXPECT_EQ(Config::env_name("health.cadence"), "CA_AGCM_HEALTH_CADENCE");
  EXPECT_EQ(Config::env_name("health.max_wind"), "CA_AGCM_HEALTH_MAX_WIND");
  EXPECT_EQ(Config::env_name("health.max_energy_growth"),
            "CA_AGCM_HEALTH_MAX_ENERGY_GROWTH");
  EXPECT_EQ(Config::env_name("health.growth_warmup"),
            "CA_AGCM_HEALTH_GROWTH_WARMUP");
  EXPECT_EQ(Config::env_name("service.numeric_retry"),
            "CA_AGCM_SERVICE_NUMERIC_RETRY");

  setenv("CA_AGCM_HEALTH_CADENCE", "4", 1);
  setenv("CA_AGCM_HEALTH_MAX_WIND", "2500", 1);
  setenv("CA_AGCM_HEALTH_GROWTH_WARMUP", "5", 1);
  setenv("CA_AGCM_SERVICE_NUMERIC_RETRY", "7", 1);
  // Stored entries exist but the environment must win over them.
  auto cfg = Config::from_text(
      "health.cadence = 1\n"
      "health.max_wind = 1e4\n"
      "service.numeric_retry = 2\n");
  const auto health = core::HealthOptions::from_config(cfg);
  EXPECT_EQ(health.cadence, 4);
  EXPECT_DOUBLE_EQ(health.max_wind, 2500.0);
  EXPECT_EQ(health.growth_warmup, 5);
  const auto pool_opts = service::PoolOptions::from_config(cfg);
  EXPECT_EQ(pool_opts.health.cadence, 4);
  EXPECT_EQ(pool_opts.numeric_retry, 7);
  unsetenv("CA_AGCM_HEALTH_CADENCE");
  unsetenv("CA_AGCM_HEALTH_MAX_WIND");
  unsetenv("CA_AGCM_HEALTH_GROWTH_WARMUP");
  unsetenv("CA_AGCM_SERVICE_NUMERIC_RETRY");
  // With the environment cleared, the stored entries apply again — and
  // the service-facing default stays "sentinel on" (cadence 1).
  EXPECT_EQ(core::HealthOptions::from_config(cfg).cadence, 1);
  EXPECT_EQ(service::PoolOptions::from_config(cfg).numeric_retry, 2);
  EXPECT_EQ(core::HealthOptions::from_config(Config{}).cadence, 1);
}

TEST(Config, ObsKeysFoldAndOverride) {
  // The observability knobs ride the same config/env machinery; pin the
  // folded names and both resolution paths (from_config for configured
  // runs, env_resolved for RunOptions{} call sites the CI leg flips on).
  EXPECT_EQ(Config::env_name("obs.trace"), "CA_AGCM_OBS_TRACE");
  EXPECT_EQ(Config::env_name("obs.dump_on_failure"),
            "CA_AGCM_OBS_DUMP_ON_FAILURE");
  EXPECT_EQ(Config::env_name("obs.ring_events"), "CA_AGCM_OBS_RING_EVENTS");
  EXPECT_EQ(Config::env_name("obs.dump_dir"), "CA_AGCM_OBS_DUMP_DIR");

  auto cfg = Config::from_text(
      "obs.trace = true\n"
      "obs.dump_on_failure = false\n"
      "obs.ring_events = 32\n"
      "obs.dump_dir = cfg_dumps\n");
  obs::TraceOptions from_cfg = obs::TraceOptions::from_config(cfg);
  EXPECT_TRUE(from_cfg.trace);
  EXPECT_FALSE(from_cfg.dump_on_failure);
  EXPECT_EQ(from_cfg.ring_events, 32);
  EXPECT_EQ(from_cfg.dump_dir, "cfg_dumps");

  setenv("CA_AGCM_OBS_TRACE", "0", 1);
  setenv("CA_AGCM_OBS_RING_EVENTS", "64", 1);
  setenv("CA_AGCM_OBS_DUMP_DIR", "env_dumps", 1);
  // The environment wins over stored entries...
  from_cfg = obs::TraceOptions::from_config(cfg);
  EXPECT_FALSE(from_cfg.trace);
  EXPECT_EQ(from_cfg.ring_events, 64);
  EXPECT_EQ(from_cfg.dump_dir, "env_dumps");
  // ...and over programmatic defaults; untouched knobs survive.
  obs::TraceOptions prog;
  prog.trace = true;
  prog.dump_on_failure = false;
  const obs::TraceOptions resolved = prog.env_resolved();
  EXPECT_FALSE(resolved.trace);
  EXPECT_FALSE(resolved.dump_on_failure);  // no env var: programmatic value
  EXPECT_EQ(resolved.ring_events, 64);
  EXPECT_EQ(resolved.dump_dir, "env_dumps");
  unsetenv("CA_AGCM_OBS_TRACE");
  unsetenv("CA_AGCM_OBS_RING_EVENTS");
  unsetenv("CA_AGCM_OBS_DUMP_DIR");
  EXPECT_TRUE(obs::TraceOptions::from_config(cfg).trace);
}

TEST(Json, BuildAndDump) {
  Json doc = Json::object();
  doc["name"] = "bench";
  doc["count"] = 3;
  doc["ratio"] = 0.5;
  doc["ok"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["items"] = std::move(arr);
  const std::string text = doc.dump(0);
  EXPECT_EQ(text,
            "{\"name\":\"bench\",\"count\":3,\"ratio\":0.5,\"ok\":true,"
            "\"items\":[1,\"two\"]}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"a": 1, "b": [true, null, -2.5e2], "s": "x\nyA"})";
  const Json doc = Json::parse(text);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->as_double(), 1.0);
  const Json* b = doc.find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_DOUBLE_EQ(b->items()[2].as_double(), -250.0);
  EXPECT_EQ(doc.find("s")->as_string(), "x\nyA");
  // dump -> parse -> dump is a fixed point.
  const std::string once = doc.dump(2);
  EXPECT_EQ(Json::parse(once).dump(2), once);
}

TEST(Json, ParseErrorsCarryOffset) {
  EXPECT_THROW(Json::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.005);
  t.reset();
  EXPECT_LT(t.seconds(), 0.005);
}

TEST(PhaseTimers, AccumulatesByPhase) {
  PhaseTimers pt;
  pt.start("a");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pt.start("b");  // implicitly stops "a"
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pt.stop();
  EXPECT_GE(pt.total("a"), 0.002);
  EXPECT_GE(pt.total("b"), 0.002);
  EXPECT_DOUBLE_EQ(pt.total("c"), 0.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total("a"), 0.0);
}

TEST(Math, FloorDivAndMod) {
  EXPECT_EQ(floor_div(7, 3), 2);
  EXPECT_EQ(floor_div(-7, 3), -3);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(pos_mod(7, 3), 1);
  EXPECT_EQ(pos_mod(-7, 3), 2);
  EXPECT_EQ(pos_mod(-6, 3), 0);
}

TEST(Math, CloseHelper) {
  EXPECT_TRUE(close(1.0, 1.0 + 1e-15));
  EXPECT_FALSE(close(1.0, 1.001));
  EXPECT_TRUE(close(0.0, 1e-15));
}

}  // namespace
}  // namespace ca::util
