// Halo boxes, pack/unpack round trips, and physical boundary fills.
#include <gtest/gtest.h>

#include "mesh/halo.hpp"
#include "util/array3d.hpp"

namespace ca::mesh {
namespace {

using util::Array3D;
using util::Halo3;

Array3D<double> labeled(int nx, int ny, int nz, Halo3 halo) {
  Array3D<double> a(nx, ny, nz, halo);
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i)
        a(i, j, k) = i + 100.0 * j + 10000.0 * k;
  return a;
}

TEST(HaloBox, SendRecvGeometry) {
  // Toward +y neighbor with width 2: send the last 2 owned rows, receive
  // into rows [ny, ny+2).
  Box s = send_box(8, 6, 4, 0, 1, 0, 0, 2, 0);
  EXPECT_EQ(s, (Box{0, 8, 4, 6, 0, 4}));
  Box r = recv_box(8, 6, 4, 0, 1, 0, 0, 2, 0);
  EXPECT_EQ(r, (Box{0, 8, 6, 8, 0, 4}));
  // Corner toward (-y, +z).
  Box c = send_box(8, 6, 4, 0, -1, 1, 0, 2, 1);
  EXPECT_EQ(c, (Box{0, 8, 0, 2, 3, 4}));
  Box cr = recv_box(8, 6, 4, 0, -1, 1, 0, 2, 1);
  EXPECT_EQ(cr, (Box{0, 8, -2, 0, 4, 5}));
}

TEST(HaloBox, VolumeAndEmpty) {
  EXPECT_EQ((Box{0, 2, 0, 3, 0, 4}).volume(), 24);
  EXPECT_TRUE((Box{0, 0, 0, 3, 0, 4}).empty());
  EXPECT_FALSE((Box{0, 1, 0, 1, 0, 1}).empty());
}

TEST(HaloPack, RoundTripThroughBuffer) {
  auto src = labeled(6, 5, 4, {1, 2, 2});
  Array3D<double> dst(6, 5, 4, {1, 2, 2});
  // Simulate sending the +y strip of src into the -y halo of dst (as a
  // south neighbor would receive it).
  Box s = send_box(6, 5, 4, 0, 1, 0, 0, 2, 0);
  Box r = recv_box(6, 5, 4, 0, -1, 0, 0, 2, 0);
  ASSERT_EQ(s.volume(), r.volume());
  std::vector<double> buf;
  pack_box(src, s, buf);
  unpack_box(dst, r, buf);
  for (int k = 0; k < 4; ++k)
    for (int d = 0; d < 2; ++d)
      for (int i = 0; i < 6; ++i)
        EXPECT_DOUBLE_EQ(dst(i, -2 + d, k), src(i, 3 + d, k));
}

TEST(HaloPack, MismatchedBufferThrows) {
  Array3D<double> a(4, 4, 4, {1, 1, 1});
  std::vector<double> buf(5, 0.0);
  EXPECT_THROW(unpack_box(a, Box{0, 2, 0, 2, 0, 2}, buf),
               std::invalid_argument);
}

TEST(PoleFill, NorthSymmetricReflectsRows) {
  auto a = labeled(4, 6, 3, {0, 2, 0});
  fill_pole_north(a, 2, PoleParity::kSymmetric);
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(a(i, -1, k), a(i, 0, k));
      EXPECT_DOUBLE_EQ(a(i, -2, k), a(i, 1, k));
    }
}

TEST(PoleFill, SouthSymmetricReflectsRows) {
  auto a = labeled(4, 6, 3, {0, 2, 0});
  fill_pole_south(a, 2, PoleParity::kSymmetric);
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(a(i, 6, k), a(i, 5, k));
      EXPECT_DOUBLE_EQ(a(i, 7, k), a(i, 4, k));
    }
}

TEST(PoleFill, NorthAntisymmetricZeroesPoleEdge) {
  auto a = labeled(4, 6, 3, {0, 3, 0});
  // Shift values so the interior is nonzero everywhere.
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 6; ++j)
      for (int i = 0; i < 4; ++i) a(i, j, k) += 1.0;
  fill_pole_north(a, 3, PoleParity::kAntisymmetric);
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(a(i, -1, k), 0.0) << "pole edge flux must vanish";
      EXPECT_DOUBLE_EQ(a(i, -2, k), -a(i, 0, k));
      EXPECT_DOUBLE_EQ(a(i, -3, k), -a(i, 1, k));
    }
}

TEST(PoleFill, SouthAntisymmetricZeroesOwnedPoleRow) {
  auto a = labeled(4, 6, 3, {0, 2, 0});
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 6; ++j)
      for (int i = 0; i < 4; ++i) a(i, j, k) += 1.0;
  fill_pole_south(a, 2, PoleParity::kAntisymmetric);
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(a(i, 5, k), 0.0)
          << "owned row ny-1 is the south pole edge";
      EXPECT_DOUBLE_EQ(a(i, 6, k), -a(i, 4, k));
      EXPECT_DOUBLE_EQ(a(i, 7, k), -a(i, 3, k));
    }
}

TEST(PeriodicFill, WrapsBothSides) {
  auto a = labeled(8, 3, 2, {3, 0, 0});
  fill_x_periodic(a, 3);
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 3; ++j) {
      for (int d = 1; d <= 3; ++d) {
        EXPECT_DOUBLE_EQ(a(-d, j, k), a(8 - d, j, k));
        EXPECT_DOUBLE_EQ(a(7 + d, j, k), a(d - 1, j, k));
      }
    }
}

TEST(ZFill, ZeroGradientAtTopAndBottom) {
  auto a = labeled(4, 3, 5, {0, 0, 2});
  fill_z_top(a, 2);
  fill_z_bottom(a, 2);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(a(i, j, -1), a(i, j, 0));
      EXPECT_DOUBLE_EQ(a(i, j, -2), a(i, j, 0));
      EXPECT_DOUBLE_EQ(a(i, j, 5), a(i, j, 4));
      EXPECT_DOUBLE_EQ(a(i, j, 6), a(i, j, 4));
    }
}

TEST(PoleFill, CoversHaloCorners) {
  // The pole fill must also populate x-halo columns so subsequent stencil
  // sweeps over extended ranges see consistent corners.
  auto a = labeled(6, 4, 2, {2, 2, 0});
  fill_x_periodic(a, 2);
  fill_pole_north(a, 2, PoleParity::kSymmetric);
  for (int k = 0; k < 2; ++k)
    for (int i = -2; i < 8; ++i)
      EXPECT_DOUBLE_EQ(a(i, -1, k), a(i, 0, k));
}

}  // namespace
}  // namespace ca::mesh
