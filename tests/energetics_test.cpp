// Energy-budget diagnostics: the operator roles the IAP scheme is built
// around, measured.
#include <gtest/gtest.h>

#include <cmath>

#include "core/energetics.hpp"

namespace ca::core {
namespace {

DycoreConfig cfg(int x_order, double filter_band) {
  DycoreConfig c;
  c.nx = 32;
  c.ny = 16;
  c.nz = 8;
  c.params.x_order = x_order;
  c.params.filter_band = filter_band;
  return c;
}

state::State wave_state(SerialCore& core) {
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  return xi;
}

TEST(Energetics, AdvectionConservesExactlyWithoutFilter) {
  SerialCore core(cfg(/*x_order=*/2, /*filter_band=*/0.0));
  auto xi = wave_state(core);
  const auto budget = diagnose_energetics(core, xi);
  EXPECT_GT(budget.energy, 0.0);
  EXPECT_LT(budget.advection_residual, 1e-10)
      << "skew-symmetric advection must conserve the invariant";
}

TEST(Energetics, FilteredAdvectionNearlyConserves) {
  SerialCore core(cfg(4, 1.0));
  auto xi = wave_state(core);
  const auto budget = diagnose_energetics(core, xi);
  EXPECT_LT(budget.advection_residual, 0.05)
      << "filter + 4th order may only perturb conservation slightly";
}

TEST(Energetics, SmoothingIsDissipative) {
  SerialCore core(cfg(4, 1.0));
  auto xi = wave_state(core);
  // Add grid-scale noise the smoothing exists to remove.
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 32; ++i)
        xi.phi()(i, j, k) += 0.5 * (((i + j) % 2 == 0) ? 1.0 : -1.0);
  const auto budget = diagnose_energetics(core, xi);
  EXPECT_LT(budget.smoothing_delta, 0.0);
  EXPECT_GT(budget.smoothing_delta, -budget.energy)
      << "dissipation must be a fraction of the total";
}

TEST(Energetics, FilterIsDissipative) {
  SerialCore core(cfg(4, 1.2));
  auto xi = wave_state(core);
  // Polar grid-scale noise.
  for (int k = 0; k < 8; ++k)
    for (int j : {0, 1, 14, 15})
      for (int i = 0; i < 32; ++i)
        xi.u()(i, j, k) += 2.0 * ((i % 2 == 0) ? 1.0 : -1.0);
  const auto budget = diagnose_energetics(core, xi);
  EXPECT_LT(budget.filter_delta, 0.0);
}

TEST(Energetics, RestStateHasTrivialBudget) {
  SerialCore core(cfg(4, 1.0));
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kRestIsothermal;
  core.initialize(xi, opt);
  const auto budget = diagnose_energetics(core, xi);
  EXPECT_DOUBLE_EQ(budget.energy, 0.0);
  EXPECT_DOUBLE_EQ(budget.advection_rate, 0.0);
  EXPECT_DOUBLE_EQ(budget.adaptation_rate, 0.0);
  EXPECT_DOUBLE_EQ(budget.smoothing_delta, 0.0);
  EXPECT_DOUBLE_EQ(budget.filter_delta, 0.0);
}

TEST(Energetics, AdaptationExchangeIsBounded) {
  // The adaptation terms exchange energy (gravity waves); over one
  // evaluation the rate must be bounded relative to E / dt scales.
  SerialCore core(cfg(4, 1.0));
  auto xi = wave_state(core);
  const auto budget = diagnose_energetics(core, xi);
  EXPECT_TRUE(std::isfinite(budget.adaptation_rate));
  // E-folding time must be much longer than one adaptation step (60 s).
  const double efold =
      budget.energy / (std::abs(budget.adaptation_rate) + 1e-300);
  EXPECT_GT(efold, 600.0)
      << "adaptation must not create/destroy energy on the step scale";
}

TEST(Energetics, DoesNotModifyInput) {
  SerialCore core(cfg(4, 1.0));
  auto xi = wave_state(core);
  auto copy = core.make_state();
  copy.assign(xi, xi.interior());
  (void)diagnose_energetics(core, xi);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xi, copy, xi.interior()),
                   0.0);
}

}  // namespace
}  // namespace ca::core
