// End-to-end integration: the full Held-Suarez configuration (dynamical
// core + physics) running distributed over multiple steps, checking
// stability, conservation behavior, and cross-algorithm agreement on the
// final climate diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "physics/held_suarez.hpp"

namespace ca {
namespace {

core::DycoreConfig hs_config() {
  core::DycoreConfig c;
  c.nx = 36;
  c.ny = 24;
  c.nz = 10;
  c.M = 3;
  c.dt_adapt = 60.0;
  c.dt_advect = 300.0;
  return c;
}

TEST(Integration, HeldSuarezRunsStablyWithCACore) {
  const auto cfg = hs_config();
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::CACore core(cfg, ctx, {1, 2, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kRandomPerturbation;
    ic.random_amplitude = 1e-2;
    core.initialize(xi, ic);
    for (int s = 0; s < 30; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    core.finalize(xi);
    auto d = core::reduce_diagnostics(
        ctx, ctx.world(), core::local_diagnostics(core.op_context(), xi));
    EXPECT_TRUE(std::isfinite(d.total_energy()));
    EXPECT_LT(d.max_abs_u, 300.0) << "winds must stay physical";
    EXPECT_LT(d.max_abs_psa, 3.0e4) << "surface pressure must stay bounded";
    // The forcing must have begun building the H-S thermal structure:
    // warmer tropics than poles at the surface.
    auto t_surf = core::zonal_mean_t(core.op_context(), xi,
                                     core.decomp().lnz() - 1);
    const bool has_equator = !core.decomp().at_north_pole();
    if (has_equator) {
      // rank 1 owns the southern half incl. the equator-adjacent rows.
    }
    // Compare the rank's extreme rows: the row closest to the equator must
    // be at least as warm as the row closest to its pole.
    const int lny = core.decomp().lny();
    const double t_near_pole =
        core.decomp().at_north_pole() ? t_surf[0] : t_surf[static_cast<std::size_t>(lny - 1)];
    const double t_near_equator =
        core.decomp().at_north_pole() ? t_surf[static_cast<std::size_t>(lny - 1)] : t_surf[0];
    EXPECT_GE(t_near_equator, t_near_pole - 0.5)
        << "H-S forcing must warm the tropics relative to the poles";
  });
}

TEST(Integration, OriginalAndCAProduceSameClimateStatistics) {
  // Over a forced run the two algorithms must agree on integrated
  // diagnostics to within the approximation error.
  const auto cfg = hs_config();
  double e_orig = 0.0, e_ca = 0.0, u_orig = 0.0, u_ca = 0.0;

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kZonalJet;
    core.initialize(xi, ic);
    for (int s = 0; s < 15; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    auto d = core::reduce_diagnostics(
        ctx, ctx.world(), core::local_diagnostics(core.op_context(), xi));
    if (ctx.world_rank() == 0) {
      e_orig = d.total_energy();
      u_orig = d.max_abs_u;
    }
  });
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::CACore core(cfg, ctx, {1, 2, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kZonalJet;
    core.initialize(xi, ic);
    for (int s = 0; s < 15; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    core.finalize(xi);
    auto d = core::reduce_diagnostics(
        ctx, ctx.world(), core::local_diagnostics(core.op_context(), xi));
    if (ctx.world_rank() == 0) {
      e_ca = d.total_energy();
      u_ca = d.max_abs_u;
    }
  });
  ASSERT_GT(e_orig, 0.0);
  EXPECT_NEAR(e_ca / e_orig, 1.0, 0.02)
      << "energy must agree to the approximation error";
  EXPECT_NEAR(u_ca / u_orig, 1.0, 0.05);
}

TEST(Integration, LongUnforcedRunConservesMassAnomaly) {
  // With no forcing, the area-integrated p'_sa (mass anomaly) must stay
  // near its initial value: the psa tendency is a divergence plus a
  // diffusion, both of which integrate to ~0 over the sphere.
  auto cfg = hs_config();
  cfg.params.x_order = 2;  // exactly conservative advection
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(cfg, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, ic);
    auto d0 = core::reduce_diagnostics(
        ctx, ctx.world(), core::local_diagnostics(core.op_context(), xi));
    core.run(xi, 20);
    auto d1 = core::reduce_diagnostics(
        ctx, ctx.world(), core::local_diagnostics(core.op_context(), xi));
    if (ctx.world_rank() == 0) {
      // Scale: total area * a typical p'_sa magnitude that develops.
      const double area = 4.0 * 3.14159 * 6.371e6 * 6.371e6;
      const double scale = area * std::max(1.0, d1.max_abs_psa);
      EXPECT_LT(std::abs(d1.mass_anomaly - d0.mass_anomaly), 0.02 * scale)
          << "global mass anomaly must be nearly conserved";
    }
  });
}

TEST(Integration, RestStateSurvivesForcedEquilibriumSpinup) {
  // Rest + H-S forcing: pressure stays flat, winds develop only through
  // the thermal forcing (thermal wind), everything finite.
  const auto cfg = hs_config();
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::CACore core(cfg, ctx, {1, 2, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kRestIsothermal;
    core.initialize(xi, ic);
    for (int s = 0; s < 20; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    core.finalize(xi);
    auto d = core::reduce_diagnostics(
        ctx, ctx.world(), core::local_diagnostics(core.op_context(), xi));
    EXPECT_TRUE(std::isfinite(d.total_energy()));
    EXPECT_GT(d.max_abs_phi, 0.0)
        << "thermal forcing must create temperature structure";
    EXPECT_LT(d.max_abs_u, 150.0);
  });
}

}  // namespace
}  // namespace ca
