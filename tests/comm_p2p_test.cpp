// Point-to-point semantics of the mini message-passing runtime.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/context.hpp"
#include "comm/runtime.hpp"

namespace ca::comm {
namespace {

TEST(CommP2P, SingleRankRuns) {
  Runtime::run(1, [](Context& ctx) {
    EXPECT_EQ(ctx.world_rank(), 0);
    EXPECT_EQ(ctx.world_size(), 1);
    EXPECT_EQ(ctx.world().size(), 1);
  });
}

TEST(CommP2P, PingPong) {
  Runtime::run(2, [](Context& ctx) {
    const auto& w = ctx.world();
    std::vector<double> buf{1.5, -2.25, 3.0};
    if (ctx.world_rank() == 0) {
      ctx.send_values<double>(w, 1, 7, buf);
      std::vector<double> back(3);
      ctx.recv_values<double>(w, 1, 8, back);
      EXPECT_EQ(back, (std::vector<double>{3.0, -4.5, 6.0}));
    } else {
      std::vector<double> got(3);
      ctx.recv_values<double>(w, 0, 7, got);
      for (auto& v : got) v *= 2.0;
      ctx.send_values<double>(w, 0, 8, got);
    }
  });
}

TEST(CommP2P, TagMatchingOutOfOrder) {
  Runtime::run(2, [](Context& ctx) {
    const auto& w = ctx.world();
    if (ctx.world_rank() == 0) {
      std::vector<int> a{1}, b{2};
      ctx.send_values<int>(w, 1, /*tag=*/10, a);
      ctx.send_values<int>(w, 1, /*tag=*/20, b);
    } else {
      // Receive in reverse tag order: matching must pick by tag, not FIFO.
      std::vector<int> x(1), y(1);
      ctx.recv_values<int>(w, 0, 20, x);
      ctx.recv_values<int>(w, 0, 10, y);
      EXPECT_EQ(x[0], 2);
      EXPECT_EQ(y[0], 1);
    }
  });
}

TEST(CommP2P, FifoPerSourceAndTag) {
  Runtime::run(2, [](Context& ctx) {
    const auto& w = ctx.world();
    static constexpr int kN = 100;
    if (ctx.world_rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        std::vector<int> v{i};
        ctx.send_values<int>(w, 1, 5, v);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::vector<int> v(1);
        ctx.recv_values<int>(w, 0, 5, v);
        EXPECT_EQ(v[0], i) << "non-overtaking order violated";
      }
    }
  });
}

TEST(CommP2P, AnySourceReceivesAll) {
  static constexpr int kP = 5;
  Runtime::run(kP, [](Context& ctx) {
    const auto& w = ctx.world();
    if (ctx.world_rank() == 0) {
      long long sum = 0;
      for (int i = 1; i < kP; ++i) {
        std::vector<long long> v(1);
        ctx.recv_values<long long>(w, kAnySource, 3, v);
        sum += v[0];
      }
      EXPECT_EQ(sum, 1 + 2 + 3 + 4);
    } else {
      std::vector<long long> v{ctx.world_rank()};
      ctx.send_values<long long>(w, 0, 3, v);
    }
  });
}

TEST(CommP2P, NonblockingExchange) {
  Runtime::run(4, [](Context& ctx) {
    const auto& w = ctx.world();
    const int me = ctx.world_rank();
    const int p = ctx.world_size();
    const int right = (me + 1) % p;
    const int left = (me - 1 + p) % p;
    std::vector<double> outbuf{static_cast<double>(me)};
    std::vector<double> frm_left(1), frm_right(1);
    std::vector<Request> reqs;
    reqs.push_back(ctx.irecv_values<double>(w, left, 1, frm_left));
    reqs.push_back(ctx.irecv_values<double>(w, right, 2, frm_right));
    ctx.isend_values<double>(w, right, 1, outbuf);
    ctx.isend_values<double>(w, left, 2, outbuf);
    ctx.waitall(reqs);
    EXPECT_DOUBLE_EQ(frm_left[0], left);
    EXPECT_DOUBLE_EQ(frm_right[0], right);
  });
}

TEST(CommP2P, SizeMismatchThrows) {
  EXPECT_THROW(
      Runtime::run(2,
                   [](Context& ctx) {
                     const auto& w = ctx.world();
                     if (ctx.world_rank() == 0) {
                       std::vector<int> v{1, 2, 3};
                       ctx.send_values<int>(w, 1, 0, v);
                     } else {
                       std::vector<int> v(2);  // wrong size
                       ctx.recv_values<int>(w, 0, 0, v);
                     }
                   }),
      std::runtime_error);
}

TEST(CommP2P, StatsCountMessagesAndBytes) {
  Runtime::run(2, [](Context& ctx) {
    const auto& w = ctx.world();
    ctx.stats().set_phase("exchange");
    if (ctx.world_rank() == 0) {
      std::vector<double> v(10, 1.0);
      ctx.send_values<double>(w, 1, 0, v);
      ctx.send_values<double>(w, 1, 0, v);
      auto s = ctx.stats().phase_totals("exchange");
      EXPECT_EQ(s.p2p_messages, 2u);
      EXPECT_EQ(s.p2p_bytes, 2u * 10u * sizeof(double));
    } else {
      std::vector<double> v(10);
      ctx.recv_values<double>(w, 0, 0, v);
      ctx.recv_values<double>(w, 0, 0, v);
      auto s = ctx.stats().phase_totals("exchange");
      EXPECT_EQ(s.p2p_messages, 0u) << "receives are not counted as sends";
    }
  });
}

TEST(CommP2P, RankExceptionPropagates) {
  EXPECT_THROW(Runtime::run(3,
                            [](Context& ctx) {
                              if (ctx.world_rank() == 1)
                                throw std::logic_error("rank failure");
                            }),
               std::logic_error);
}

TEST(CommP2P, SendToInvalidRankThrows) {
  Runtime::run(1, [](Context& ctx) {
    std::vector<int> v{1};
    EXPECT_THROW(ctx.send_values<int>(ctx.world(), 5, 0, v),
                 std::out_of_range);
  });
}

TEST(CommP2P, ManyRanksAllToOne) {
  static constexpr int kP = 16;
  Runtime::run(kP, [](Context& ctx) {
    const auto& w = ctx.world();
    if (ctx.world_rank() == 0) {
      std::vector<int> seen(kP, 0);
      for (int i = 1; i < kP; ++i) {
        std::vector<int> v(1);
        ctx.recv_values<int>(w, kAnySource, 0, v);
        seen[static_cast<std::size_t>(v[0])]++;
      }
      for (int r = 1; r < kP; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], 1);
    } else {
      std::vector<int> v{ctx.world_rank()};
      ctx.send_values<int>(w, 0, 0, v);
    }
  });
}

TEST(CommP2P, RandomTrafficStorm) {
  // Every rank sends a random number of messages to random peers with
  // random tags/sizes, then receives exactly what it was sent; the eager
  // protocol must stay deadlock-free and deliver every byte intact.
  static constexpr int kP = 6;
  Runtime::run(kP, [](Context& ctx) {
    const int me = ctx.world_rank();
    std::mt19937 rng(1234u + static_cast<unsigned>(me));
    std::uniform_int_distribution<int> peer_dist(0, kP - 1);
    std::uniform_int_distribution<int> size_dist(1, 4096);

    // Deterministic plan shared by all ranks: regenerate every rank's
    // stream so receivers know what to expect.
    struct Msg {
      int src, dst, size;
    };
    std::vector<Msg> plan;
    for (int r = 0; r < kP; ++r) {
      std::mt19937 rr(1234u + static_cast<unsigned>(r));
      std::uniform_int_distribution<int> pd(0, kP - 1);
      std::uniform_int_distribution<int> sd(1, 4096);
      for (int m = 0; m < 40; ++m) {
        int dst = pd(rr);
        int size = sd(rr);
        if (dst == r) dst = (dst + 1) % kP;
        plan.push_back({r, dst, size});
      }
    }
    // Send my messages (payload = src-and-per-destination-sequence
    // pattern, so the receiver can reconstruct it from FIFO order).
    std::vector<int> seq_to(kP, 0);
    for (const auto& m : plan) {
      if (m.src != me) continue;
      const int seq = seq_to[static_cast<std::size_t>(m.dst)]++;
      std::vector<double> buf(static_cast<std::size_t>(m.size));
      for (int q = 0; q < m.size; ++q)
        buf[static_cast<std::size_t>(q)] = me * 1e6 + seq * 1e3 + q;
      ctx.send_values<double>(ctx.world(), m.dst, /*tag=*/me, buf);
    }
    // Receive in per-source order (FIFO per (src, tag) guarantees this).
    std::vector<int> seq_from(kP, 0);
    for (const auto& m : plan) {
      if (m.dst != me) continue;
      std::vector<double> buf(static_cast<std::size_t>(m.size));
      ctx.recv_values<double>(ctx.world(), m.src, /*tag=*/m.src, buf);
      const int s = seq_from[static_cast<std::size_t>(m.src)]++;
      for (int q = 0; q < m.size; ++q)
        ASSERT_DOUBLE_EQ(buf[static_cast<std::size_t>(q)],
                         m.src * 1e6 + s * 1e3 + q);
    }
  });
}

}  // namespace
}  // namespace ca::comm
