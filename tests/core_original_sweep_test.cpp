// Configuration sweeps of the original cores: M, vertical stretching, the
// literal paper Coriolis signs, and scheme coverage with physics — broad
// smoke + equivalence coverage beyond the focused tests.
#include <gtest/gtest.h>

#include "comm/runtime.hpp"
#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "physics/held_suarez.hpp"

namespace ca::core {
namespace {

struct SweepCase {
  int M;
  bool stretched;
  int x_order;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return "M" + std::to_string(info.param.M) +
         (info.param.stretched ? "_str" : "_uni") + "_ord" +
         std::to_string(info.param.x_order);
}

DycoreConfig make(const SweepCase& c) {
  DycoreConfig cfg;
  cfg.nx = 24;
  cfg.ny = 16;
  cfg.nz = 8;
  cfg.M = c.M;
  cfg.stretched_levels = c.stretched;
  cfg.params.x_order = c.x_order;
  cfg.dt_adapt = 30.0;
  cfg.dt_advect = 120.0;
  cfg.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return cfg;
}

class OriginalSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(OriginalSweep, DistributedMatchesSerial) {
  const auto cfg = make(GetParam());
  SerialCore serial(cfg);
  auto ref = serial.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  serial.initialize(ref, opt);
  serial.run(ref, 2);

  comm::Runtime::run(4, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, DecompScheme::kYZ, {1, 2, 2});
    auto xi = core.make_state();
    core.initialize(xi, opt);
    core.run(xi, 2);
    auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) {
      EXPECT_LT(state::State::max_abs_diff(g, ref, ref.interior()), 1e-8);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Configs, OriginalSweep,
                         ::testing::Values(SweepCase{1, false, 4},
                                           SweepCase{2, false, 2},
                                           SweepCase{3, true, 4},
                                           SweepCase{4, false, 4},
                                           SweepCase{2, true, 2}),
                         case_name);

TEST(OriginalOptions, PaperCoriolisSignRunsButDiffers) {
  // The literal printed signs (symmetric pair) still integrate stably at
  // small dt but produce a measurably different trajectory.
  DycoreConfig cfg = make({2, false, 4});
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;

  SerialCore a(cfg);
  auto xa = a.make_state();
  a.initialize(xa, opt);
  a.run(xa, 3);

  cfg.params.coriolis_paper_sign = true;
  SerialCore b(cfg);
  auto xb = b.make_state();
  b.initialize(xb, opt);
  b.run(xb, 3);

  const double diff = state::State::max_abs_diff(xa, xb, xa.interior());
  EXPECT_GT(diff, 1e-6) << "the sign convention must matter";
  const auto d = local_diagnostics(b.op_context(), xb);
  EXPECT_TRUE(std::isfinite(d.total_energy()));
}

TEST(OriginalOptions, XYWithPhysicsRunsStably) {
  DycoreConfig cfg = make({2, false, 4});
  comm::Runtime::run(4, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, DecompScheme::kXY, {4, 1, 1});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kRandomPerturbation;
    core.initialize(xi, opt);
    for (int s = 0; s < 5; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    auto d = reduce_diagnostics(
        ctx, ctx.world(), local_diagnostics(core.op_context(), xi));
    EXPECT_TRUE(std::isfinite(d.total_energy()));
    EXPECT_LT(d.max_abs_u, 100.0);
  });
}

TEST(OriginalOptions, ThreeDWithPhysicsRunsStably) {
  DycoreConfig cfg = make({2, false, 4});
  comm::Runtime::run(8, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, DecompScheme::k3D, {2, 2, 2});
    physics::HeldSuarezForcing forcing(core.op_context());
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kZonalJet;
    core.initialize(xi, opt);
    for (int s = 0; s < 3; ++s) {
      core.step(xi);
      forcing.apply(xi, cfg.dt_advect);
    }
    auto d = reduce_diagnostics(
        ctx, ctx.world(), local_diagnostics(core.op_context(), xi));
    EXPECT_TRUE(std::isfinite(d.total_energy()));
  });
}

}  // namespace
}  // namespace ca::core
