// Smoothing operator: coefficients, damping properties, and the paper's
// central operator-splitting identity S~ = S~2 ∘ S~1 (Section 4.3.2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/dycore_config.hpp"
#include "mesh/decomp.hpp"
#include "ops/smoothing.hpp"

namespace ca::ops {
namespace {

struct Fixture {
  Fixture(int nx = 16, int ny = 20, int nz = 3)
      : mesh(nx, ny, nz),
        levels(mesh::SigmaLevels::uniform(nz)),
        strat(levels),
        decomp(mesh, {1, 1, 1}, {0, 0, 0}) {
    params.smooth_beta = 0.5;
    ctx = OpContext{&mesh, &levels, &strat, &decomp, params};
  }
  mesh::LatLonMesh mesh;
  mesh::SigmaLevels levels;
  state::Stratification strat;
  mesh::DomainDecomp decomp;
  ModelParams params;
  OpContext ctx;
};

state::State smooth_test_state(int nx, int ny, int nz) {
  state::State s(nx, ny, nz, core::halos_for_depth(1));
  auto h = s.u().halo();
  for (int k = -h.z; k < nz + h.z; ++k)
    for (int j = -h.y; j < ny + h.y; ++j)
      for (int i = -h.x; i < nx + h.x; ++i) {
        s.u()(i, j, k) = std::sin(0.9 * i + 0.4 * j) + 0.2 * k;
        s.v()(i, j, k) = std::cos(0.6 * i - 0.8 * j) * (k + 1);
        s.phi()(i, j, k) = std::sin(1.3 * i) * std::cos(0.5 * j) + 0.01 * k;
      }
  for (int j = -s.psa().hy(); j < ny + s.psa().hy(); ++j)
    for (int i = -s.psa().hx(); i < nx + s.psa().hx(); ++i)
      s.psa()(i, j) = 50.0 * std::sin(0.35 * i * j + 0.2 * j);
  return s;
}

TEST(Smoothing, YCoefficientsSumToOne) {
  ModelParams params;
  params.smooth_beta = 0.37;
  double sum = 0.0;
  for (int d = -2; d <= 2; ++d) sum += smoothing_y_coeff(params, d);
  EXPECT_NEAR(sum, 1.0, 1e-15) << "constants must be preserved";
  EXPECT_DOUBLE_EQ(smoothing_y_coeff(params, 3), 0.0);
  EXPECT_DOUBLE_EQ(smoothing_y_coeff(params, -1),
                   smoothing_y_coeff(params, 1));
}

TEST(Smoothing, ConstantFieldIsFixedPoint) {
  Fixture f;
  auto s = smooth_test_state(16, 20, 3);
  s.fill(7.25);
  auto out = smooth_test_state(16, 20, 3);
  apply_smoothing(f.ctx, s, out, s.interior());
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 20; ++j)
      for (int i = 0; i < 16; ++i) {
        EXPECT_NEAR(out.u()(i, j, k), 7.25, 1e-13);
        EXPECT_NEAR(out.phi()(i, j, k), 7.25, 1e-13);
      }
}

TEST(Smoothing, DampsGridScaleNoise) {
  Fixture f;
  auto s = smooth_test_state(16, 20, 3);
  // Checkerboard: the 4th difference's worst case.
  for (int j = -2; j < 22; ++j)
    for (int i = -3; i < 19; ++i)
      s.phi()(i, j, 0) = ((i + j) % 2 == 0) ? 1.0 : -1.0;
  auto out = smooth_test_state(16, 20, 3);
  apply_smoothing(f.ctx, s, out, s.interior());
  double amp = 0.0;
  for (int j = 2; j < 18; ++j)
    for (int i = 0; i < 16; ++i)
      amp = std::max(amp, std::abs(out.phi()(i, j, 0)));
  EXPECT_LT(amp, 1.0) << "grid-scale noise must be damped";
}

TEST(Smoothing, ZeroBetaIsIdentity) {
  Fixture f;
  f.params.smooth_beta = 0.0;
  f.ctx.params = f.params;
  auto s = smooth_test_state(16, 20, 3);
  auto out = smooth_test_state(16, 20, 3);
  out.fill(0.0);
  apply_smoothing(f.ctx, s, out, s.interior());
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(s, out, s.interior()), 0.0);
}

TEST(Smoothing, SplitEqualsFullWithoutNeighbors) {
  // With no split sides, S1 is the complete smoothing and S2 is a no-op.
  Fixture f;
  auto s = smooth_test_state(16, 20, 3);
  auto full = smooth_test_state(16, 20, 3);
  apply_smoothing(f.ctx, s, full, s.interior());

  auto split = smooth_test_state(16, 20, 3);
  split.assign(s, split.extended(3, 2, 1));
  apply_smoothing_former(f.ctx, split, split.interior(), false, false);
  EXPECT_LT(state::State::max_abs_diff(split, full, s.interior()), 1e-13);
}

TEST(Smoothing, SplitAcrossBoundaryEqualsGlobalSmoothing) {
  // Emulate two ranks sharing a y boundary: each applies S1, exchanges the
  // post-S1 rows and the pre-smoothing rows, applies S2 — the result must
  // equal the global single-domain smoothing (the identity S = S2 ∘ S1).
  const int nx = 16, nz = 3, ny_half = 10, ny = 2 * ny_half;
  mesh::LatLonMesh mesh(nx, ny, nz);
  auto levels = mesh::SigmaLevels::uniform(nz);
  state::Stratification strat(levels);
  ModelParams params;
  params.smooth_beta = 0.5;

  // Global reference.
  mesh::DomainDecomp whole(mesh, {1, 1, 1}, {0, 0, 0});
  OpContext gctx{&mesh, &levels, &strat, &whole, params};
  auto global = smooth_test_state(nx, ny, nz);
  auto global_out = smooth_test_state(nx, ny, nz);
  apply_smoothing(gctx, global, global_out, global.interior());

  // Two local halves with consistent halos.
  for (int half = 0; half < 2; ++half) {
    mesh::DomainDecomp d(mesh, {1, 2, 1}, {0, half, 0});
    OpContext ctx{&mesh, &levels, &strat, &d, params};
    state::State local(nx, ny_half, nz, core::halos_for_depth(1));
    auto copy_from_global = [&](int deep) {
      const auto h = local.u().halo();
      for (int k = -h.z; k < nz + h.z; ++k)
        for (int j = -std::max(h.y, deep); j < ny_half + std::max(h.y, deep);
             ++j)
          for (int i = -h.x; i < nx + h.x; ++i) {
            const int gj = d.gj(j);
            if (!global.u().in_bounds(i, gj, k)) continue;
            if (j < -h.y || j >= ny_half + h.y) continue;
            local.u()(i, j, k) = global.u()(i, gj, k);
            local.v()(i, j, k) = global.v()(i, gj, k);
            local.phi()(i, j, k) = global.phi()(i, gj, k);
          }
      for (int j = -local.psa().hy(); j < ny_half + local.psa().hy(); ++j)
        for (int i = -local.psa().hx(); i < nx + local.psa().hx(); ++i) {
          const int gj = d.gj(j);
          if (global.psa().in_bounds(i, gj)) local.psa()(i, j) = global.psa()(i, gj);
        }
    };
    copy_from_global(2);
    // Pre-smoothing copy.  S2 recomputes the +-2 halo rows as complete
    // canonical folds, reading pre-smoothing rows out to +-4 (the CA
    // core's fused exchange refreshes pre that deep), so the emulated
    // pre state needs depth-4 y halos filled from the global field.
    state::State pre(nx, ny_half, nz, core::halos_for_depth(3));
    {
      const auto h = pre.u().halo();
      for (int k = -h.z; k < nz + h.z; ++k)
        for (int j = -h.y; j < ny_half + h.y; ++j)
          for (int i = -h.x; i < nx + h.x; ++i) {
            const int gj = d.gj(j);
            if (!global.u().in_bounds(i, gj, k)) continue;
            pre.u()(i, j, k) = global.u()(i, gj, k);
            pre.v()(i, j, k) = global.v()(i, gj, k);
            pre.phi()(i, j, k) = global.phi()(i, gj, k);
          }
      for (int j = -pre.psa().hy(); j < ny_half + pre.psa().hy(); ++j)
        for (int i = -pre.psa().hx(); i < nx + pre.psa().hx(); ++i)
          if (global.psa().in_bounds(i, d.gj(j)))
            pre.psa()(i, j) = global.psa()(i, d.gj(j));
    }

    const bool split_north = (half == 1);
    const bool split_south = (half == 0);
    apply_smoothing_former(ctx, local, local.interior(), split_north,
                           split_south);
    // Emulate the exchange: fill halo rows with the neighbor's POST-S1
    // values by applying S1 to the global field on those rows...
    // equivalently, run the other half too and copy.  Simplest: compute
    // the neighbor's S1 on a fresh copy.
    {
      mesh::DomainDecomp dn(mesh, {1, 2, 1}, {0, 1 - half, 0});
      OpContext nctx{&mesh, &levels, &strat, &dn, params};
      state::State nbr(nx, ny_half, nz, core::halos_for_depth(1));
      for (int k = -1; k < nz + 1; ++k)
        for (int j = -2; j < ny_half + 2; ++j)
          for (int i = -3; i < nx + 3; ++i) {
            const int gj = dn.gj(j);
            if (!global.u().in_bounds(i, gj, k)) continue;
            nbr.u()(i, j, k) = global.u()(i, gj, k);
            nbr.v()(i, j, k) = global.v()(i, gj, k);
            nbr.phi()(i, j, k) = global.phi()(i, gj, k);
          }
      for (int j = -nbr.psa().hy(); j < ny_half + nbr.psa().hy(); ++j)
        for (int i = -nbr.psa().hx(); i < nx + nbr.psa().hx(); ++i)
          if (global.psa().in_bounds(i, dn.gj(j)))
            nbr.psa()(i, j) = global.psa()(i, dn.gj(j));
      apply_smoothing_former(nctx, nbr, nbr.interior(), half == 0,
                             half == 1);
      // Copy the neighbor's boundary rows into our halo rows.
      for (int k = 0; k < nz; ++k)
        for (int dd = 1; dd <= 2; ++dd)
          for (int i = 0; i < nx; ++i) {
            if (half == 0) {  // our south halo = neighbor's first rows
              local.u()(i, ny_half - 1 + dd, k) = nbr.u()(i, dd - 1, k);
              local.v()(i, ny_half - 1 + dd, k) = nbr.v()(i, dd - 1, k);
              local.phi()(i, ny_half - 1 + dd, k) = nbr.phi()(i, dd - 1, k);
            } else {  // our north halo = neighbor's last rows
              local.u()(i, -dd, k) = nbr.u()(i, ny_half - dd, k);
              local.v()(i, -dd, k) = nbr.v()(i, ny_half - dd, k);
              local.phi()(i, -dd, k) = nbr.phi()(i, ny_half - dd, k);
            }
          }
      for (int dd = 1; dd <= 2; ++dd)
        for (int i = 0; i < nx; ++i) {
          if (half == 0)
            local.psa()(i, ny_half - 1 + dd) = nbr.psa()(i, dd - 1);
          else
            local.psa()(i, -dd) = nbr.psa()(i, ny_half - dd);
        }
    }
    apply_smoothing_later(ctx, pre, local, local.interior(), split_north,
                          split_south);

    // Owned rows must equal the global smoothing.
    double m = 0.0;
    for (int k = 0; k < nz; ++k)
      for (int j = 0; j < ny_half; ++j)
        for (int i = 0; i < nx; ++i) {
          m = std::max(m, std::abs(local.phi()(i, j, k) -
                                   global_out.phi()(i, d.gj(j), k)));
          m = std::max(m, std::abs(local.u()(i, j, k) -
                                   global_out.u()(i, d.gj(j), k)));
        }
    for (int j = 0; j < ny_half; ++j)
      for (int i = 0; i < nx; ++i)
        m = std::max(m, std::abs(local.psa()(i, j) -
                                 global_out.psa()(i, d.gj(j))));
    EXPECT_DOUBLE_EQ(m, 0.0)
        << "S2 ∘ S1 must equal S bitwise (half " << half << ")";
    // The received halo rows must also be fully smoothed after S2.
    double mh = 0.0;
    for (int k = 0; k < nz; ++k)
      for (int dd = 1; dd <= 2; ++dd)
        for (int i = 0; i < nx; ++i) {
          const int j = (half == 0) ? ny_half - 1 + dd : -dd;
          mh = std::max(mh, std::abs(local.phi()(i, j, k) -
                                     global_out.phi()(i, d.gj(j), k)));
        }
    EXPECT_DOUBLE_EQ(mh, 0.0) << "halo rows must be completed by S2 bitwise";
  }
}

TEST(Smoothing, FormerLeavesUVComplete) {
  // P1 is x-only: S1 must fully smooth U and V even on split rows.
  Fixture f;
  auto s = smooth_test_state(16, 20, 3);
  auto full = smooth_test_state(16, 20, 3);
  apply_smoothing(f.ctx, s, full, s.interior());
  auto split = smooth_test_state(16, 20, 3);
  split.assign(s, split.extended(3, 2, 1));
  apply_smoothing_former(f.ctx, split, split.interior(), true, true);
  double m = 0.0;
  for (int k = 0; k < 3; ++k)
    for (int j = 0; j < 20; ++j)
      for (int i = 0; i < 16; ++i) {
        m = std::max(m, std::abs(split.u()(i, j, k) - full.u()(i, j, k)));
        m = std::max(m, std::abs(split.v()(i, j, k) - full.v()(i, j, k)));
      }
  EXPECT_LT(m, 1e-13);
}

}  // namespace
}  // namespace ca::ops
