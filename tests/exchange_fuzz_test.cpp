// Halo-exchange fuzzing: random decompositions, random widths, and random
// field sets, validated cell-by-cell against a globally labeled array —
// every received halo cell must hold exactly the owner's value.
#include <gtest/gtest.h>

#include <random>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "core/exchange.hpp"
#include "mesh/decomp.hpp"

namespace ca::core {
namespace {

/// Deterministic global label of a cell of field `f`.
double label(int f, int gi, int gj, int gk) {
  return f * 1e9 + gi * 1e6 + gj * 1e3 + gk + 0.25;
}

struct FuzzCase {
  int nx, ny, nz;
  std::array<int, 3> dims;
  int wx, wy, wz;
  int nfields;
};

FuzzCase random_case(std::mt19937& rng) {
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  FuzzCase c;
  c.dims = {pick(1, 2), pick(1, 3), pick(1, 2)};
  c.wx = c.dims[0] > 1 ? pick(1, 3) : 0;
  c.wy = pick(1, 3);
  c.wz = pick(1, 2);
  // Blocks must be at least as wide as the widths they send.
  c.nx = c.dims[0] * std::max(4, c.wx + 1) * 2;
  c.ny = c.dims[1] * std::max(4, c.wy + 1);
  c.nz = c.dims[2] * std::max(3, c.wz + 1);
  c.nfields = pick(1, 3);
  return c;
}

/// Runs one decomposition/width/field-count case under `opts` and checks
/// every received halo cell against its owner's label.
void run_fuzz_case(const FuzzCase& c, const comm::RunOptions& opts) {
  const int p = c.dims[0] * c.dims[1] * c.dims[2];

  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
    auto topo = comm::make_cart(ctx, ctx.world(), c.dims,
                                {true, false, false});
    mesh::DomainDecomp d(mesh, c.dims, topo.coords);
    ops::OpContext opctx;  // only used for decomp flags in fills

    std::vector<util::Array3D<double>> fields;
    for (int f = 0; f < c.nfields; ++f) {
      fields.emplace_back(d.lnx(), d.lny(), d.lnz(),
                          util::Halo3{3, 3, 2});
      for (int k = 0; k < d.lnz(); ++k)
        for (int j = 0; j < d.lny(); ++j)
          for (int i = 0; i < d.lnx(); ++i)
            fields.back()(i, j, k) =
                label(f, d.gi(i), d.gj(j), d.gk(k));
    }
    (void)opctx;

    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> items;
    for (auto& f : fields)
      items.push_back({&f, nullptr, c.wx, c.wy, c.wz});
    ex.exchange(items, "fuzz");

    // Every halo cell whose global owner exists must match the label.
    for (int f = 0; f < c.nfields; ++f) {
      for (int k = -c.wz; k < d.lnz() + c.wz; ++k) {
        for (int j = -c.wy; j < d.lny() + c.wy; ++j) {
          for (int i = -c.wx; i < d.lnx() + c.wx; ++i) {
            const bool interior = i >= 0 && i < d.lnx() && j >= 0 &&
                                  j < d.lny() && k >= 0 && k < d.lnz();
            if (interior) continue;
            // Which neighbor owns this halo cell?
            const int gj = d.gj(j), gk = d.gk(k);
            int gi = d.gi(i);
            // x is periodic.
            gi = ((gi % c.nx) + c.nx) % c.nx;
            if (gj < 0 || gj >= c.ny || gk < 0 || gk >= c.nz)
              continue;  // beyond a physical boundary: BC territory
            // Cells in "diagonal" directions are only exchanged when
            // both offsets are within the exchanged widths, which the
            // loop bounds already enforce.
            const double got =
                fields[static_cast<std::size_t>(f)](i, j, k);
            EXPECT_DOUBLE_EQ(got, label(f, gi, gj, gk))
                << "field " << f << " halo (" << i << "," << j << ","
                << k << ") dims " << c.dims[0] << "x" << c.dims[1]
                << "x" << c.dims[2] << " widths " << c.wx << "/" << c.wy
                << "/" << c.wz;
          }
        }
      }
    }
  });
}

class ExchangeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeFuzz, HalosMatchOwners) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "replay: fuzz seed " << GetParam() << " trial " << trial);
    run_fuzz_case(random_case(rng), comm::RunOptions{});
  }
}

TEST_P(ExchangeFuzz, HalosMatchOwnersUnderFaults) {
  // Same property with an active FaultPlan: recoverable faults (drop with
  // retransmission, duplicates, delays) must leave every halo cell intact.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) ^ 0x9e3779b9u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(GetParam()) * 1000u +
        static_cast<std::uint64_t>(trial);
    // Both seeds logged so any counterexample replays from ctest output.
    SCOPED_TRACE(::testing::Message()
                 << "replay: fuzz seed " << GetParam() << " trial " << trial
                 << " fault seed " << fault_seed);
    comm::FaultPlan plan(fault_seed);
    auto add = [&](comm::FaultKind kind, double prob, int param) {
      comm::FaultRule r;
      r.kind = kind;
      r.probability = prob;
      r.param = param;
      plan.add_rule(r);
    };
    add(comm::FaultKind::kDrop, 0.05, 1);
    add(comm::FaultKind::kDuplicate, 0.05, 1);
    add(comm::FaultKind::kDelay, 0.05, 2);

    comm::RunOptions opts;
    opts.faults = &plan;
    run_fuzz_case(random_case(rng), opts);
    EXPECT_EQ(plan.summary().detected_total(), 0u)
        << "recoverable faults must not surface as errors (fault seed "
        << fault_seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeFuzz,
                         ::testing::Values(11, 23, 37, 59, 71),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(ExchangeSplit, BeginFinishDeliversSameAsBlocking) {
  comm::Runtime::run(4, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(16, 12, 6);
    auto topo = comm::make_cart(ctx, ctx.world(), {1, 2, 2},
                                {true, false, false});
    mesh::DomainDecomp d(mesh, {1, 2, 2}, topo.coords);
    auto make_field = [&] {
      util::Array3D<double> f(d.lnx(), d.lny(), d.lnz(),
                              util::Halo3{2, 2, 2});
      for (int k = 0; k < d.lnz(); ++k)
        for (int j = 0; j < d.lny(); ++j)
          for (int i = 0; i < d.lnx(); ++i)
            f(i, j, k) = label(0, d.gi(i), d.gj(j), d.gk(k));
      return f;
    };
    auto a = make_field();
    auto b = make_field();
    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> ia{{&a, nullptr, 0, 2, 1}};
    std::vector<ExchangeItem> ib{{&b, nullptr, 0, 2, 1}};
    ex.exchange(ia, "blocking");
    ex.begin(ib, "split");
    // Interleave unrelated work before finishing.
    volatile double sink = 0.0;
    for (int n = 0; n < 1000; ++n) sink = sink + n;
    ex.finish();
    EXPECT_EQ(a.raw().size(), b.raw().size());
    for (std::size_t q = 0; q < a.raw().size(); ++q)
      EXPECT_DOUBLE_EQ(a.raw()[q], b.raw()[q]);
  });
}

TEST(ExchangeEdge, SingleRankExchangesNothing) {
  comm::Runtime::run(1, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(8, 6, 4);
    auto topo = comm::make_cart(ctx, ctx.world(), {1, 1, 1},
                                {true, false, false});
    mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
    util::Array3D<double> f(8, 6, 4, util::Halo3{1, 1, 1});
    f.fill(3.0);
    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> items{{&f, nullptr, 1, 1, 1}};
    ex.exchange(items, "none");
    EXPECT_EQ(ex.last_message_count(), 0u);
    EXPECT_EQ(ctx.stats().phase_totals("none").p2p_messages, 0u);
  });
}

}  // namespace
}  // namespace ca::core
