// Halo-exchange fuzzing: random decompositions, random widths, and random
// field sets, validated cell-by-cell against a globally labeled array —
// every received halo cell must hold exactly the owner's value.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <random>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "core/exchange.hpp"
#include "mesh/decomp.hpp"
#include "util/config.hpp"

namespace ca::core {
namespace {

/// Deterministic global label of a cell of field `f`.
double label(int f, int gi, int gj, int gk) {
  return f * 1e9 + gi * 1e6 + gj * 1e3 + gk + 0.25;
}

struct FuzzCase {
  int nx, ny, nz;
  std::array<int, 3> dims;
  int wx, wy, wz;
  int nfields;
};

FuzzCase random_case(std::mt19937& rng) {
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  FuzzCase c;
  c.dims = {pick(1, 2), pick(1, 3), pick(1, 2)};
  c.wx = c.dims[0] > 1 ? pick(1, 3) : 0;
  c.wy = pick(1, 3);
  c.wz = pick(1, 2);
  // Blocks must be at least as wide as the widths they send.
  c.nx = c.dims[0] * std::max(4, c.wx + 1) * 2;
  c.ny = c.dims[1] * std::max(4, c.wy + 1);
  c.nz = c.dims[2] * std::max(3, c.wz + 1);
  c.nfields = pick(1, 3);
  return c;
}

/// How a fuzz case drives the exchanger.
enum class Drive {
  kBlocking,     // exchange(): begin + finish
  kTestSpin,     // post, spin test() until drained, then finish()
  kInterleaved,  // post, random test/finish_region/finish mix, finish x2
};

/// Random post/test/finish_region/finish interleaving against in-flight
/// posts; every sequence ends with finish() twice (double-finish must be
/// a no-op) and zero pending receives.
void drive_interleaved(HaloExchanger& ex, const mesh::DomainDecomp& d,
                       const FuzzCase& c,
                       const std::vector<ExchangeItem>& items,
                       std::uint64_t seed, int rank) {
  ex.post(items, "fuzz");
  std::mt19937 rr(static_cast<unsigned>(
      seed ^ (0x9e3779b9u * static_cast<unsigned>(rank + 1))));
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rr);
  };
  const int n_actions = pick(0, 8);
  for (int a = 0; a < n_actions; ++a) {
    switch (pick(0, 3)) {
      case 0:
        ex.test();
        break;
      case 1: {
        // A random sub-range read footprint, halo cells included.
        mesh::Box r;
        r.i0 = pick(-c.wx, d.lnx() - 1);
        r.i1 = r.i0 + pick(1, d.lnx());
        r.j0 = pick(-c.wy, d.lny() - 1);
        r.j1 = r.j0 + pick(1, d.lny());
        r.k0 = pick(-c.wz, d.lnz() - 1);
        r.k1 = r.k0 + pick(1, d.lnz());
        ex.finish_region(r);
        break;
      }
      case 2:
        // finish before the posts ever completed (or again after one).
        ex.finish();
        break;
      case 3:
        break;  // no progress call at all this slot
    }
  }
  ex.finish();
  ex.finish();  // double-finish is a documented no-op
  EXPECT_EQ(ex.pending_count(), 0u);
}

void drive_case(HaloExchanger& ex, const mesh::DomainDecomp& d,
                const FuzzCase& c, const std::vector<ExchangeItem>& items,
                Drive drive, std::uint64_t iseed, int rank) {
  switch (drive) {
    case Drive::kBlocking:
      ex.exchange(items, "fuzz");
      break;
    case Drive::kTestSpin: {
      ex.post(items, "fuzz");
      // Each test() probe is one receive poll: it ages delayed messages
      // and requests retransmission of dropped ones, so the spin makes
      // progress under faults too.  The deadline only guards against a
      // regression that stops test() from ever draining; finish() after
      // a drained round is a no-op.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (!ex.test() && std::chrono::steady_clock::now() < deadline) {
      }
      EXPECT_EQ(ex.pending_count(), 0u)
          << "test() spin failed to drain the posted receives";
      ex.finish();
      break;
    }
    case Drive::kInterleaved:
      drive_interleaved(ex, d, c, items, iseed, rank);
      break;
  }
}

/// Runs one decomposition/width/field-count case under `opts` and checks
/// every received halo cell against its owner's label.
void run_fuzz_case(const FuzzCase& c, const comm::RunOptions& opts,
                   Drive drive = Drive::kBlocking, std::uint64_t iseed = 0) {
  const int p = c.dims[0] * c.dims[1] * c.dims[2];

  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
    auto topo = comm::make_cart(ctx, ctx.world(), c.dims,
                                {true, false, false});
    mesh::DomainDecomp d(mesh, c.dims, topo.coords);
    ops::OpContext opctx;  // only used for decomp flags in fills

    std::vector<util::Array3D<double>> fields;
    for (int f = 0; f < c.nfields; ++f) {
      fields.emplace_back(d.lnx(), d.lny(), d.lnz(),
                          util::Halo3{3, 3, 2});
      for (int k = 0; k < d.lnz(); ++k)
        for (int j = 0; j < d.lny(); ++j)
          for (int i = 0; i < d.lnx(); ++i)
            fields.back()(i, j, k) =
                label(f, d.gi(i), d.gj(j), d.gk(k));
    }
    (void)opctx;

    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> items;
    for (auto& f : fields)
      items.push_back({&f, nullptr, c.wx, c.wy, c.wz});
    drive_case(ex, d, c, items, drive, iseed, ctx.world_rank());

    // Every halo cell whose global owner exists must match the label.
    for (int f = 0; f < c.nfields; ++f) {
      for (int k = -c.wz; k < d.lnz() + c.wz; ++k) {
        for (int j = -c.wy; j < d.lny() + c.wy; ++j) {
          for (int i = -c.wx; i < d.lnx() + c.wx; ++i) {
            const bool interior = i >= 0 && i < d.lnx() && j >= 0 &&
                                  j < d.lny() && k >= 0 && k < d.lnz();
            if (interior) continue;
            // Which neighbor owns this halo cell?
            const int gj = d.gj(j), gk = d.gk(k);
            int gi = d.gi(i);
            // x is periodic.
            gi = ((gi % c.nx) + c.nx) % c.nx;
            if (gj < 0 || gj >= c.ny || gk < 0 || gk >= c.nz)
              continue;  // beyond a physical boundary: BC territory
            // Cells in "diagonal" directions are only exchanged when
            // both offsets are within the exchanged widths, which the
            // loop bounds already enforce.
            const double got =
                fields[static_cast<std::size_t>(f)](i, j, k);
            EXPECT_DOUBLE_EQ(got, label(f, gi, gj, gk))
                << "field " << f << " halo (" << i << "," << j << ","
                << k << ") dims " << c.dims[0] << "x" << c.dims[1]
                << "x" << c.dims[2] << " widths " << c.wx << "/" << c.wy
                << "/" << c.wz;
          }
        }
      }
    }
  });
}

class ExchangeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeFuzz, HalosMatchOwners) {
  // The CI overlap leg (CA_AGCM_COMM_OVERLAP_EXCHANGE=1) routes the
  // baseline sweep through the async post/test/finish path instead of
  // the blocking exchange(), so the env override buys real coverage.
  const Drive drive =
      util::Config{}.get_bool("comm.overlap_exchange", false)
          ? Drive::kTestSpin
          : Drive::kBlocking;
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(::testing::Message()
                 << "replay: fuzz seed " << GetParam() << " trial " << trial);
    run_fuzz_case(random_case(rng), comm::RunOptions{}, drive,
                  static_cast<std::uint64_t>(GetParam()));
  }
}

TEST_P(ExchangeFuzz, HalosMatchOwnersUnderFaults) {
  // Same property with an active FaultPlan: recoverable faults (drop with
  // retransmission, duplicates, delays) must leave every halo cell intact.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) ^ 0x9e3779b9u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(GetParam()) * 1000u +
        static_cast<std::uint64_t>(trial);
    // Both seeds logged so any counterexample replays from ctest output.
    SCOPED_TRACE(::testing::Message()
                 << "replay: fuzz seed " << GetParam() << " trial " << trial
                 << " fault seed " << fault_seed);
    comm::FaultPlan plan(fault_seed);
    auto add = [&](comm::FaultKind kind, double prob, int param) {
      comm::FaultRule r;
      r.kind = kind;
      r.probability = prob;
      r.param = param;
      plan.add_rule(r);
    };
    add(comm::FaultKind::kDrop, 0.05, 1);
    add(comm::FaultKind::kDuplicate, 0.05, 1);
    add(comm::FaultKind::kDelay, 0.05, 2);

    comm::RunOptions opts;
    opts.faults = &plan;
    run_fuzz_case(random_case(rng), opts);
    EXPECT_EQ(plan.summary().detected_total(), 0u)
        << "recoverable faults must not surface as errors (fault seed "
        << fault_seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeFuzz,
                         ::testing::Values(11, 23, 37, 59, 71),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "seed" + std::to_string(i.param);
                         });

/// Async post/test/finish fuzzing: the same halo-vs-owner property must
/// hold for every interleaving of the async API, and no interleaving may
/// deadlock (the test-spin deadline and ctest TIMEOUT guard that).
class ExchangeAsyncFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeAsyncFuzz, RandomInterleavingsDeliverEveryHalo) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) ^ 0x51ed270u);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(::testing::Message() << "replay: async seed " << GetParam()
                                      << " trial " << trial);
    const FuzzCase c = random_case(rng);
    const Drive drive =
        trial % 2 == 0 ? Drive::kTestSpin : Drive::kInterleaved;
    run_fuzz_case(c, comm::RunOptions{}, drive,
                  static_cast<std::uint64_t>(GetParam()) * 100u +
                      static_cast<std::uint64_t>(trial));
  }
}

TEST_P(ExchangeAsyncFuzz, RandomInterleavingsSurviveRecoverableFaults) {
  // Drops fire against in-flight posts and must be recovered by
  // retransmission regardless of which probe (test, finish_region,
  // finish) detects them; duplicates and delays ride along.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) ^ 0x2545f491u);
  for (int trial = 0; trial < 4; ++trial) {
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(GetParam()) * 7000u +
        static_cast<std::uint64_t>(trial);
    SCOPED_TRACE(::testing::Message() << "replay: async seed " << GetParam()
                                      << " trial " << trial << " fault seed "
                                      << fault_seed);
    comm::FaultPlan plan(fault_seed);
    auto add = [&](comm::FaultKind kind, double prob, int param) {
      comm::FaultRule r;
      r.kind = kind;
      r.probability = prob;
      r.param = param;
      plan.add_rule(r);
    };
    add(comm::FaultKind::kDrop, 0.10, 1);
    add(comm::FaultKind::kDuplicate, 0.05, 1);
    add(comm::FaultKind::kDelay, 0.05, 2);

    comm::RunOptions opts;
    opts.faults = &plan;
    const Drive drive =
        trial % 2 == 0 ? Drive::kInterleaved : Drive::kTestSpin;
    run_fuzz_case(random_case(rng), opts, drive, fault_seed);
    EXPECT_EQ(plan.summary().detected_total(), 0u)
        << "recoverable faults must not surface as errors (fault seed "
        << fault_seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeAsyncFuzz,
                         ::testing::Values(101, 211, 331),
                         [](const ::testing::TestParamInfo<int>& i) {
                           return "seed" + std::to_string(i.param);
                         });

TEST(ExchangeAsync, SteadyStateRoundsAreAllocationFree) {
  // After the warm-up rounds sized every pool slot, post/test/finish
  // rounds must reuse pooled buffers only: a growing pool in the step
  // loop would be both a perf regression and a leak of the async path.
  comm::Runtime::run(4, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(16, 12, 6);
    auto topo = comm::make_cart(ctx, ctx.world(), {1, 2, 2},
                                {true, false, false});
    mesh::DomainDecomp d(mesh, {1, 2, 2}, topo.coords);
    util::Array3D<double> a(d.lnx(), d.lny(), d.lnz(), util::Halo3{3, 3, 2});
    util::Array3D<double> b(d.lnx(), d.lny(), d.lnz(), util::Halo3{3, 3, 2});
    a.fill(1.0);
    b.fill(2.0);
    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> items{{&a, nullptr, 0, 3, 2},
                                    {&b, nullptr, 0, 2, 1}};
    auto one_round = [&] {
      ex.post(items, "steady");
      while (!ex.test()) {
      }
      ex.finish();
    };
    for (int round = 0; round < 2; ++round) one_round();
    const std::uint64_t warm = ctx.stats().pool().allocations;
    for (int round = 0; round < 5; ++round) one_round();
    EXPECT_EQ(ctx.stats().pool().allocations, warm)
        << "async rounds leaked pooled buffers after warm-up";
  });
}

TEST(ExchangeSplit, BeginFinishDeliversSameAsBlocking) {
  comm::Runtime::run(4, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(16, 12, 6);
    auto topo = comm::make_cart(ctx, ctx.world(), {1, 2, 2},
                                {true, false, false});
    mesh::DomainDecomp d(mesh, {1, 2, 2}, topo.coords);
    auto make_field = [&] {
      util::Array3D<double> f(d.lnx(), d.lny(), d.lnz(),
                              util::Halo3{2, 2, 2});
      for (int k = 0; k < d.lnz(); ++k)
        for (int j = 0; j < d.lny(); ++j)
          for (int i = 0; i < d.lnx(); ++i)
            f(i, j, k) = label(0, d.gi(i), d.gj(j), d.gk(k));
      return f;
    };
    auto a = make_field();
    auto b = make_field();
    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> ia{{&a, nullptr, 0, 2, 1}};
    std::vector<ExchangeItem> ib{{&b, nullptr, 0, 2, 1}};
    ex.exchange(ia, "blocking");
    ex.begin(ib, "split");
    // Interleave unrelated work before finishing.
    volatile double sink = 0.0;
    for (int n = 0; n < 1000; ++n) sink = sink + n;
    ex.finish();
    EXPECT_EQ(a.raw().size(), b.raw().size());
    for (std::size_t q = 0; q < a.raw().size(); ++q)
      EXPECT_DOUBLE_EQ(a.raw()[q], b.raw()[q]);
  });
}

TEST(ExchangeEdge, SingleRankExchangesNothing) {
  comm::Runtime::run(1, [&](comm::Context& ctx) {
    mesh::LatLonMesh mesh(8, 6, 4);
    auto topo = comm::make_cart(ctx, ctx.world(), {1, 1, 1},
                                {true, false, false});
    mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
    util::Array3D<double> f(8, 6, 4, util::Halo3{1, 1, 1});
    f.fill(3.0);
    HaloExchanger ex(ctx, topo, d);
    std::vector<ExchangeItem> items{{&f, nullptr, 1, 1, 1}};
    ex.exchange(items, "none");
    EXPECT_EQ(ex.last_message_count(), 0u);
    EXPECT_EQ(ctx.stats().phase_totals("none").p2p_messages, 0u);
  });
}

}  // namespace
}  // namespace ca::core
