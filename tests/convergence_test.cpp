// Order-of-accuracy and stability validations with known solutions:
//   - solid-body zonal advection of a tracer has the exact solution
//     q(lambda, t) = q0(lambda - omega t): measure the convergence order
//     of the 2nd- and 4th-order x-advection;
//   - the Fourier polar filter's purpose: without it, time steps sized for
//     the mid-latitude CFL blow up at the poles.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/tracer.hpp"
#include "util/math.hpp"

namespace ca {
namespace {

/// L2 error of advecting a smooth zonal profile once around a latitude
/// circle with a uniform zonal flow, at resolution nx.
double rotation_error(int nx, int x_order) {
  core::DycoreConfig c;
  c.nx = nx;
  c.ny = 8;
  c.nz = 4;
  c.params.x_order = x_order;
  core::SerialCore core(c);
  const auto& ctx = core.op_context();

  // Uniform physical u at every point; psa = 0 so P is uniform.
  auto xi = core.make_state();
  xi.fill(0.0);
  const double u0 = 20.0;
  const double p_ref = core.strat().p_factor_ref();
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < nx; ++i) xi.u()(i, j, k) = p_ref * u0;
  core.fill_boundaries(xi);
  ops::DiagWorkspace ws(nx, c.ny, c.nz, core::halos_for_depth(1));
  core::compute_diagnostics(ctx, nullptr, nullptr, xi, xi.interior(), ws,
                            false, comm::AllreduceAlgorithm::kAuto, "t");

  // Tracer: a smooth single-harmonic profile on a mid-latitude row.
  const int j0 = 4, k0 = 2;
  util::Array3D<double> q(nx, c.ny, c.nz, core::halos_for_depth(1).h3);
  for (int i = 0; i < nx; ++i)
    q(i, j0, k0) = std::sin(2.0 * util::kPi * i / nx);

  // Advect for a fixed physical time with dt scaled so the temporal error
  // is negligible relative to the spatial one.
  const double a_sin = ctx.mesh->radius() * ctx.sin_t(j0);
  const double total_time = 0.05 * 2.0 * util::kPi * a_sin / u0;
  const int steps = 100 * (nx / 16) * (nx / 16);
  ops::advance_tracer(ctx, xi, ws.local, ws.vert, q, total_time / steps,
                      steps);

  // Exact solution: the profile shifted by u0 * t / (a sin(theta)).
  const double shift = u0 * total_time / a_sin;  // radians
  double err2 = 0.0;
  for (int i = 0; i < nx; ++i) {
    const double exact =
        std::sin(2.0 * util::kPi * i / nx - 2.0 * util::kPi * shift /
                                                (2.0 * util::kPi / 1.0));
    // lambda_i = (i+0.5) dl; the initial profile used index phase, so the
    // exact shifted profile in index space is sin(2 pi i/nx - shift_idx)
    // with shift_idx = shift / dl * (2 pi / nx)... express directly:
    (void)exact;
    const double exact_idx =
        std::sin(2.0 * util::kPi * i / nx - shift);
    err2 += std::pow(q(i, j0, k0) - exact_idx, 2);
  }
  return std::sqrt(err2 / nx);
}

TEST(Convergence, SecondOrderAdvectionConvergesAtOrderTwo) {
  const double e1 = rotation_error(16, 2);
  const double e2 = rotation_error(32, 2);
  const double order = std::log2(e1 / e2);
  EXPECT_GT(order, 1.6) << "e(16) = " << e1 << ", e(32) = " << e2;
  EXPECT_LT(order, 2.6);
}

TEST(Convergence, FourthOrderAdvectionConvergesFaster) {
  const double e1 = rotation_error(16, 4);
  const double e2 = rotation_error(32, 4);
  const double order = std::log2(e1 / e2);
  EXPECT_GT(order, 2.8) << "e(16) = " << e1 << ", e(32) = " << e2;
}

TEST(Convergence, FourthOrderBeatsSecondOrderAtEqualResolution) {
  EXPECT_LT(rotation_error(32, 4), 0.5 * rotation_error(32, 2));
}

TEST(FilterStability, PolarFilterEnablesMidLatitudeTimeStep) {
  // A time step sized for the EQUATORIAL CFL violates the polar-row CFL
  // by ~1/sin(theta_0).  The Fourier filter removes exactly the zonal
  // modes that would go unstable; without it the run must blow up, with
  // it the run must stay bounded.
  auto run_maxu = [&](double filter_band) {
    core::DycoreConfig c;
    c.nx = 48;
    c.ny = 24;
    c.nz = 4;
    c.M = 2;
    c.params.filter_band = filter_band;
    // Aggressive steps: stable mid-latitude, unstable at the poles
    // without filtering (polar gravity-wave CFL > 1).
    c.dt_adapt = 900.0;
    c.dt_advect = 1800.0;
    c.params.smooth_beta = 0.05;
    core::SerialCore core(c);
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    opt.jet_speed = 40.0;
    core.initialize(xi, opt);
    for (int s = 0; s < 25; ++s) {
      core.step(xi);
      const auto d = core::local_diagnostics(core.op_context(), xi);
      if (!std::isfinite(d.max_abs_u) || d.max_abs_u > 1e4)
        return 1e30;  // blew up
    }
    return core::local_diagnostics(core.op_context(), xi).max_abs_u;
  };

  const double with_filter = run_maxu(/*filter_band=*/1.3);
  EXPECT_LT(with_filter, 1e3) << "filtered run must stay bounded";
  const double without_filter = run_maxu(0.0);
  EXPECT_GT(without_filter, 100.0 * with_filter)
      << "the unfiltered run should blow up at this dt (got "
      << without_filter << " vs " << with_filter << ")";
}

}  // namespace
}  // namespace ca
