// Mesh geometry, sigma levels, and block decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "mesh/decomp.hpp"
#include "mesh/latlon.hpp"
#include "mesh/sigma.hpp"
#include "util/math.hpp"

namespace ca::mesh {
namespace {

TEST(LatLon, SpacingAndStaggering) {
  LatLonMesh mesh(720, 360, 30);
  EXPECT_DOUBLE_EQ(mesh.dlambda(), 2.0 * util::kPi / 720);
  EXPECT_DOUBLE_EQ(mesh.dtheta(), util::kPi / 360);
  // Scalar rows avoid the poles.
  EXPECT_GT(mesh.theta(0), 0.0);
  EXPECT_LT(mesh.theta(359), util::kPi);
  // C-grid staggering: U west of scalar, V south of scalar.
  EXPECT_DOUBLE_EQ(mesh.lambda(0) - mesh.lambda_u(0), 0.5 * mesh.dlambda());
  EXPECT_DOUBLE_EQ(mesh.theta_v(0) - mesh.theta(0), 0.5 * mesh.dtheta());
  // V edge rows reach the poles exactly.
  EXPECT_DOUBLE_EQ(mesh.theta_v(-1), 0.0);
  EXPECT_DOUBLE_EQ(mesh.theta_v(359), util::kPi);
}

TEST(LatLon, TrigCachesMatchDirectEvaluation) {
  LatLonMesh mesh(90, 45, 10);
  for (int j = 0; j < 45; ++j) {
    EXPECT_NEAR(mesh.sin_theta(j), std::sin(mesh.theta(j)), 1e-15);
    EXPECT_NEAR(mesh.cos_theta(j), std::cos(mesh.theta(j)), 1e-15);
    EXPECT_NEAR(mesh.cot_theta(j),
                std::cos(mesh.theta(j)) / std::sin(mesh.theta(j)), 1e-12);
  }
  // V rows at the physical poles have vanishing sin(theta_v).
  EXPECT_NEAR(mesh.sin_theta_v(-1), 0.0, 1e-15);
  EXPECT_NEAR(mesh.sin_theta_v(44), 0.0, 1e-12);
  // All scalar rows have strictly positive sin(theta).
  for (int j = -1; j <= 45; ++j) EXPECT_GT(mesh.sin_theta(j), 0.0);
}

TEST(LatLon, TotalAreaApproximatesSphere) {
  LatLonMesh mesh(180, 90, 5);
  double total = 0.0;
  for (int j = 0; j < mesh.ny(); ++j)
    total += mesh.cell_area(j) * mesh.nx();
  const double sphere = 4.0 * util::kPi * mesh.radius() * mesh.radius();
  EXPECT_NEAR(total / sphere, 1.0, 1e-3);
}

TEST(LatLon, TooSmallThrows) {
  EXPECT_THROW(LatLonMesh(2, 45, 10), std::invalid_argument);
  EXPECT_THROW(LatLonMesh(90, 2, 10), std::invalid_argument);
  EXPECT_THROW(LatLonMesh(90, 45, 0), std::invalid_argument);
}

TEST(Sigma, UniformLevels) {
  auto levels = SigmaLevels::uniform(30);
  EXPECT_EQ(levels.nz(), 30);
  EXPECT_DOUBLE_EQ(levels.half(0), 0.0);
  EXPECT_DOUBLE_EQ(levels.half(30), 1.0);
  double sum = 0.0;
  for (int k = 0; k < 30; ++k) {
    EXPECT_NEAR(levels.dsigma(k), 1.0 / 30, 1e-15);
    EXPECT_DOUBLE_EQ(levels.full(k),
                     0.5 * (levels.half(k) + levels.half(k + 1)));
    sum += levels.dsigma(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(Sigma, StretchedLevelsRefineTowardSurface) {
  auto levels = SigmaLevels::stretched(20, 2.0);
  EXPECT_DOUBLE_EQ(levels.half(0), 0.0);
  EXPECT_DOUBLE_EQ(levels.half(20), 1.0);
  // Thickness decreases toward the surface (k = nz-1).
  EXPECT_GT(levels.dsigma(0), levels.dsigma(19));
  double sum = 0.0;
  for (int k = 0; k < 20; ++k) {
    EXPECT_GT(levels.dsigma(k), 0.0);
    sum += levels.dsigma(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(Sigma, InvalidArgsThrow) {
  EXPECT_THROW(SigmaLevels::uniform(0), std::invalid_argument);
  EXPECT_THROW(SigmaLevels::stretched(10, -1.0), std::invalid_argument);
}

class BlockRangeSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BlockRangeSweep, PartitionCoversWithoutOverlap) {
  const auto [n, p] = GetParam();
  int covered = 0;
  int prev_end = 0;
  for (int idx = 0; idx < p; ++idx) {
    Range r = block_range(n, p, idx);
    EXPECT_EQ(r.begin, prev_end) << "blocks must be contiguous";
    EXPECT_GE(r.count, n / p);
    EXPECT_LE(r.count, n / p + 1);
    covered += r.count;
    prev_end = r.end();
  }
  EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockRangeSweep,
    ::testing::Values(std::pair{10, 1}, std::pair{10, 2}, std::pair{10, 3},
                      std::pair{360, 128}, std::pair{30, 8},
                      std::pair{30, 15}, std::pair{7, 7},
                      std::pair{719, 64}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& i) {
      return "n" + std::to_string(i.param.first) + "_p" +
             std::to_string(i.param.second);
    });

TEST(BlockRange, BadArgsThrow) {
  EXPECT_THROW(block_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(block_range(10, 2, 2), std::invalid_argument);
  EXPECT_THROW(block_range(10, 2, -1), std::invalid_argument);
}

TEST(DomainDecomp, YZSchemeProperties) {
  LatLonMesh mesh(90, 46, 12);
  DomainDecomp d(mesh, {1, 4, 3}, {0, 1, 2});
  EXPECT_EQ(d.lnx(), 90) << "Y-Z decomposition keeps full latitude circles";
  EXPECT_TRUE(d.owns_full_x());
  EXPECT_FALSE(d.at_north_pole());
  EXPECT_FALSE(d.at_south_pole());
  EXPECT_TRUE(d.at_surface());
  EXPECT_FALSE(d.at_model_top());
  // Global index mapping.
  EXPECT_EQ(d.gj(0), block_range(46, 4, 1).begin);
  EXPECT_EQ(d.gk(0), block_range(12, 3, 2).begin);
}

TEST(DomainDecomp, BoundaryFlags) {
  LatLonMesh mesh(32, 16, 8);
  DomainDecomp nw(mesh, {2, 2, 2}, {0, 0, 0});
  EXPECT_TRUE(nw.at_north_pole());
  EXPECT_TRUE(nw.at_model_top());
  EXPECT_FALSE(nw.at_south_pole());
  EXPECT_FALSE(nw.owns_full_x());
  DomainDecomp se(mesh, {2, 2, 2}, {1, 1, 1});
  EXPECT_TRUE(se.at_south_pole());
  EXPECT_TRUE(se.at_surface());
}

TEST(DomainDecomp, OversubscriptionThrows) {
  LatLonMesh mesh(8, 4, 2);
  EXPECT_THROW(DomainDecomp(mesh, {1, 8, 1}, {0, 7, 0}),
               std::invalid_argument);
  EXPECT_THROW(DomainDecomp(mesh, {1, 2, 2}, {0, 2, 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ca::mesh
