// Analytic cost formulas and lower bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "perf/cost.hpp"
#include "perf/lower_bounds.hpp"
#include "perf/machine.hpp"

namespace ca::perf {
namespace {

TEST(Cost, P2PIsAffineInBytes) {
  MachineModel m;
  m.alpha = 5e-6;
  m.beta = 2e-9;
  EXPECT_DOUBLE_EQ(p2p_time(m, 0), 5e-6);
  EXPECT_DOUBLE_EQ(p2p_time(m, 1000), 5e-6 + 2e-6);
}

TEST(Cost, RingAllreduceSinglerankIsFree) {
  MachineModel m = MachineModel::tianhe2();
  EXPECT_DOUBLE_EQ(ring_allreduce_time(m, 1, 1 << 20), 0.0);
  EXPECT_DOUBLE_EQ(recursive_doubling_allreduce_time(m, 1, 1 << 20), 0.0);
}

TEST(Cost, RingBeatsRecursiveDoublingForLargeVectors) {
  MachineModel m = MachineModel::tianhe2();
  const int p = 16;
  const std::size_t big = 64u << 20;
  EXPECT_LT(ring_allreduce_time(m, p, big),
            recursive_doubling_allreduce_time(m, p, big));
}

TEST(Cost, RecursiveDoublingBeatsRingForSmallVectors) {
  MachineModel m = MachineModel::tianhe2();
  const int p = 64;
  const std::size_t small = 64;
  EXPECT_LT(recursive_doubling_allreduce_time(m, p, small),
            ring_allreduce_time(m, p, small));
}

TEST(Cost, AllreduceAutoPicksMinimum) {
  MachineModel m = MachineModel::tianhe2();
  for (int p : {2, 8, 64, 512}) {
    for (std::size_t b : {std::size_t{64}, std::size_t{1} << 22}) {
      EXPECT_DOUBLE_EQ(allreduce_time(m, p, b),
                       std::min(ring_allreduce_time(m, p, b),
                                recursive_doubling_allreduce_time(m, p, b)));
    }
  }
}

TEST(Cost, RingVolumeFormula) {
  EXPECT_EQ(ring_allreduce_bytes(1, 1000), 0u);
  EXPECT_EQ(ring_allreduce_bytes(4, 1000), 2u * 3u * 1000u / 4u);
}

TEST(Cost, DistributedFftGrowsWithRanksPastOne) {
  MachineModel m = MachineModel::tianhe2();
  const double t1 = distributed_fft_time(m, 1, 720, 100);
  const double t4 = distributed_fft_time(m, 4, 720, 100);
  // With px = 1 there is no communication term at all; with px > 1 the
  // butterfly rounds dominate the reduced local work.
  EXPECT_GT(t4, 0.0);
  EXPECT_GT(t1, 0.0);
  // Communication share at p=4: subtract local work.
  const double local4 = distributed_fft_time(m, 4, 720, 100) -
                        std::log2(4) * (m.alpha +
                                        m.collective_round_overhead +
                                        m.beta * (720.0 / 4) * 100 * 16);
  EXPECT_GT(t4, local4);
}

TEST(LowerBounds, Theorem41VanishesAtPxOne) {
  EXPECT_DOUBLE_EQ(fourier_filter_lower_bound_words(720, 1), 0.0);
  EXPECT_GT(fourier_filter_lower_bound_words(720, 2), 0.0);
}

TEST(LowerBounds, Theorem41DecreasesWithMoreRanksUntilSaturation) {
  const double w2 = fourier_filter_lower_bound_words(1 << 16, 2);
  const double w8 = fourier_filter_lower_bound_words(1 << 16, 8);
  EXPECT_GT(w2, w8);
}

TEST(LowerBounds, Theorem42LinearInPzMinusOne) {
  MeshShape mesh{720, 360, 30};
  EXPECT_DOUBLE_EQ(summation_lower_bound_words(mesh, 1), 0.0);
  const double w2 = summation_lower_bound_words(mesh, 2);
  const double w5 = summation_lower_bound_words(mesh, 5);
  EXPECT_DOUBLE_EQ(w2, 2.0 * 1 * 720 * 360);
  EXPECT_DOUBLE_EQ(w5, 4.0 * w2 / 1.0 / 2.0 * 2.0);  // 2*(5-1)*nx*ny
}

TEST(LowerBounds, FourierTermDominatesSummationTerm) {
  // The Section 4.2 argument: nx ny nz log nx / (px log(nx/px)) >>
  // (pz-1) nx ny for practical shapes — the F cost is the high-order term.
  MeshShape mesh{720, 360, 30};
  const int px = 2, pz = 2;
  const double f_total =
      fourier_filter_lower_bound_words(mesh.nx, px) *
      static_cast<double>(mesh.ny) * static_cast<double>(mesh.nz);
  const double c_total = summation_lower_bound_words(mesh, pz);
  EXPECT_GT(f_total, 5.0 * c_total);
}

TEST(LowerBounds, Section53Ordering) {
  // W_XY >> W_YZ > W_CA and S_XY > S_YZ > S_CA for the paper's shapes.
  MeshShape mesh{720, 360, 30};
  const int M = 3;
  const long long K = 1000;
  ProcGrid yz{1, 128, 8};
  ProcGrid xy{32, 32, 1};
  EXPECT_GT(w_xy(mesh, xy, M, K), w_yz(mesh, yz, M, K));
  EXPECT_GT(w_yz(mesh, yz, M, K), w_ca(mesh, yz, M, K));
  EXPECT_GT(s_xy(M, K), s_yz(M, K));
  EXPECT_GT(s_yz(M, K), s_ca(M, K));
}

TEST(LowerBounds, CaSavesOneThirdOfYzWords) {
  MeshShape mesh{720, 360, 30};
  ProcGrid yz{1, 64, 16};
  const double ratio = w_ca(mesh, yz, 3, 100) / w_yz(mesh, yz, 3, 100);
  EXPECT_NEAR(ratio, 2.0 / 3.0, 1e-12);
}

TEST(LowerBounds, SyncCountsMatchPaperFormulas) {
  EXPECT_DOUBLE_EQ(s_ca(3, 10), (2 * 3 + 2) * 10.0);
  EXPECT_DOUBLE_EQ(s_yz(3, 10), (6 * 3 + 4) * 10.0);
  EXPECT_DOUBLE_EQ(s_xy(3, 10), (9 * 3 + 10) * 10.0);
}

TEST(LowerBounds, InvalidArgsThrow) {
  EXPECT_THROW(fourier_filter_lower_bound_words(1, 1),
               std::invalid_argument);
  EXPECT_THROW(fourier_filter_lower_bound_words(720, 0),
               std::invalid_argument);
  EXPECT_THROW(summation_lower_bound_words(MeshShape{1, 1, 1}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ca::perf
