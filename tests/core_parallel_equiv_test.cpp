// Parallel equivalence: the distributed original algorithm must reproduce
// the serial reference under every decomposition scheme, and the
// communication-avoiding algorithm must be decomposition-invariant.
#include <gtest/gtest.h>

#include <array>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"

namespace ca::core {
namespace {

DycoreConfig test_config() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  // Ordered z reduction keeps run-to-run determinism in the comparison.
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

state::State serial_reference(const DycoreConfig& cfg,
                              state::InitialCondition ic, int steps) {
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = ic;
  core.initialize(xi, opt);
  core.run(xi, steps);
  return xi;
}

struct OriginalCase {
  DecompScheme scheme;
  std::array<int, 3> dims;
  const char* name;
};

class OriginalEquivalence : public ::testing::TestWithParam<OriginalCase> {};

TEST_P(OriginalEquivalence, MatchesSerialReference) {
  const auto& param = GetParam();
  const DycoreConfig cfg = test_config();
  constexpr int kSteps = 2;
  const auto ic = state::InitialCondition::kPlanetaryWave;
  state::State reference = serial_reference(cfg, ic, kSteps);

  const int p = param.dims[0] * param.dims[1] * param.dims[2];
  comm::Runtime::run(p, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, param.scheme, param.dims);
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.run(xi, kSteps);
    state::State global =
        gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) {
      const double diff = state::State::max_abs_diff(
          global, reference, reference.interior());
      EXPECT_LT(diff, 1e-8)
          << "distributed original algorithm diverged from serial";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, OriginalEquivalence,
    ::testing::Values(
        OriginalCase{DecompScheme::kYZ, {1, 1, 1}, "yz_1x1"},
        OriginalCase{DecompScheme::kYZ, {1, 4, 1}, "yz_py4"},
        OriginalCase{DecompScheme::kYZ, {1, 1, 4}, "yz_pz4"},
        OriginalCase{DecompScheme::kYZ, {1, 2, 2}, "yz_2x2"},
        OriginalCase{DecompScheme::kYZ, {1, 4, 2}, "yz_4x2"},
        OriginalCase{DecompScheme::kXY, {2, 1, 1}, "xy_px2"},
        OriginalCase{DecompScheme::kXY, {2, 2, 1}, "xy_2x2"},
        OriginalCase{DecompScheme::kXY, {4, 2, 1}, "xy_4x2"},
        OriginalCase{DecompScheme::k3D, {2, 2, 2}, "full3d_2x2x2"},
        OriginalCase{DecompScheme::k3D, {2, 4, 2}, "full3d_2x4x2"}),
    [](const ::testing::TestParamInfo<OriginalCase>& i) {
      return i.param.name;
    });

struct CACase {
  std::array<int, 3> dims;
  const char* name;
};

class CAEquivalence : public ::testing::TestWithParam<CACase> {};

TEST_P(CAEquivalence, DecompositionInvariant) {
  // CA on p ranks must match CA on 1 rank (same algorithm, same
  // approximations) to round-off accumulation.
  const DycoreConfig cfg = test_config();
  constexpr int kSteps = 2;
  const auto ic = state::InitialCondition::kPlanetaryWave;

  state::State reference;
  comm::Runtime::run(1, [&](comm::Context& ctx) {
    CACore core(cfg, ctx, {1, 1, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.run(xi, kSteps);
    reference = gather_global(core.op_context(), ctx, core.topology(), xi);
  });

  const auto& param = GetParam();
  const int p = param.dims[0] * param.dims[1] * param.dims[2];
  // Exact mode: fresh C on the full extended faces makes the algorithm
  // decomposition-invariant to round-off.
  comm::Runtime::run(p, [&](comm::Context& ctx) {
    CAOptions opts;
    opts.fresh_c_on_block_face = false;
    CACore core(cfg, ctx, param.dims, opts);
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.run(xi, kSteps);
    state::State global =
        gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) {
      const double diff = state::State::max_abs_diff(
          global, reference, reference.interior());
      EXPECT_LT(diff, 1e-8)
          << "CA algorithm is not decomposition-invariant";
    }
  });
}

TEST(CAEquivalence, PaperModeStaysWithinApproximationClass) {
  // Paper mode (fresh C on the block face only) perturbs the edge rows of
  // the redundant windows at the same order as the approximate iteration
  // itself: the deviation from the exact-mode run must be small and must
  // shrink with dt.
  const auto ic = state::InitialCondition::kPlanetaryWave;
  auto deviation = [&](double scale) {
    DycoreConfig cfg = test_config();
    cfg.dt_adapt *= scale;
    cfg.dt_advect *= scale;
    state::State exact, paper;
    for (bool block_face : {false, true}) {
      comm::Runtime::run(2, [&](comm::Context& ctx) {
        CAOptions opts;
        opts.fresh_c_on_block_face = block_face;
        CACore core(cfg, ctx, {1, 2, 1}, opts);
        auto xi = core.make_state();
        state::InitialOptions opt;
        opt.kind = ic;
        core.initialize(xi, opt);
        core.run(xi, 2);
        auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
        if (ctx.world_rank() == 0) (block_face ? paper : exact) = std::move(g);
      });
    }
    return state::State::max_abs_diff(exact, paper, exact.interior());
  };
  const double d1 = deviation(1.0);
  EXPECT_LT(d1, 1e-2);
  if (d1 > 1e-12) {
    const double d2 = deviation(0.5);
    EXPECT_LT(d2, 0.7 * d1) << "block-face C error must shrink with dt";
  }
}

INSTANTIATE_TEST_SUITE_P(Decomps, CAEquivalence,
                         ::testing::Values(CACase{{1, 2, 1}, "py2"},
                                           CACase{{1, 1, 1}, "single"},
                                           CACase{{1, 1, 2}, "pz2"},
                                           CACase{{1, 2, 2}, "py2pz2"}),
                         [](const ::testing::TestParamInfo<CACase>& i) {
                           return i.param.name;
                         });

TEST(CAEquivalenceOptions, OverlapOnOffIdentical) {
  // The inner/outer split must not change any value: inner points never
  // read data the later smoothing or the exchange modifies.
  const DycoreConfig cfg = test_config();
  constexpr int kSteps = 2;
  const auto ic = state::InitialCondition::kPlanetaryWave;
  state::State with_overlap, without_overlap;
  for (bool overlap : {true, false}) {
    comm::Runtime::run(2, [&](comm::Context& ctx) {
      CAOptions opts;
      opts.overlap = overlap;
      CACore core(cfg, ctx, {1, 2, 1}, opts);  // paper mode: overlap is
                                               // still a pure reordering
      auto xi = core.make_state();
      state::InitialOptions opt;
      opt.kind = ic;
      core.initialize(xi, opt);
      core.run(xi, kSteps);
      auto global =
          gather_global(core.op_context(), ctx, core.topology(), xi);
      if (ctx.world_rank() == 0)
        (overlap ? with_overlap : without_overlap) = std::move(global);
    });
  }
  const double diff = state::State::max_abs_diff(
      with_overlap, without_overlap, with_overlap.interior());
  EXPECT_EQ(diff, 0.0) << "overlap must be a pure scheduling change";
}

TEST(CAEquivalenceOptions, FusedSmoothingMatchesSeparate) {
  // S2 ∘ S1 == S: fusing the smoothing exchange must not change results
  // beyond floating-point reassociation.
  const DycoreConfig cfg = test_config();
  constexpr int kSteps = 3;
  const auto ic = state::InitialCondition::kPlanetaryWave;
  state::State fused, separate;
  for (bool fuse : {true, false}) {
    comm::Runtime::run(2, [&](comm::Context& ctx) {
      CAOptions opts;
      opts.fuse_smoothing = fuse;
      CACore core(cfg, ctx, {1, 2, 1}, opts);
      auto xi = core.make_state();
      state::InitialOptions opt;
      opt.kind = ic;
      core.initialize(xi, opt);
      core.run(xi, kSteps);
      auto global =
          gather_global(core.op_context(), ctx, core.topology(), xi);
      if (ctx.world_rank() == 0)
        (fuse ? fused : separate) = std::move(global);
    });
  }
  const double diff =
      state::State::max_abs_diff(fused, separate, fused.interior());
  EXPECT_LT(diff, 1e-9) << "split smoothing must equal full smoothing";
}

TEST(CAvsOriginal, ApproximationErrorIsSmallAndConverges) {
  // The approximate nonlinear iteration perturbs the solution at high
  // order in dt1: halving dt1 (and the step counts accordingly) must
  // shrink the CA-vs-original difference by at least ~4x.
  const auto ic = state::InitialCondition::kPlanetaryWave;
  auto diff_for = [&](double dt_scale) {
    DycoreConfig cfg = test_config();
    cfg.dt_adapt *= dt_scale;
    cfg.dt_advect *= dt_scale;
    constexpr int kSteps = 1;

    state::State orig, cavar;
    comm::Runtime::run(2, [&](comm::Context& ctx) {
      OriginalCore core(cfg, ctx, DecompScheme::kYZ, {1, 2, 1});
      auto xi = core.make_state();
      state::InitialOptions opt;
      opt.kind = ic;
      core.initialize(xi, opt);
      core.run(xi, kSteps);
      auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
      if (ctx.world_rank() == 0) orig = std::move(g);
    });
    comm::Runtime::run(2, [&](comm::Context& ctx) {
      CACore core(cfg, ctx, {1, 2, 1});
      auto xi = core.make_state();
      state::InitialOptions opt;
      opt.kind = ic;
      core.initialize(xi, opt);
      core.run(xi, kSteps);
      auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
      if (ctx.world_rank() == 0) cavar = std::move(g);
    });
    return state::State::max_abs_diff(orig, cavar, orig.interior());
  };

  const double d1 = diff_for(1.0);
  const double d2 = diff_for(0.5);
  EXPECT_LT(d1, 1e-2) << "CA must stay close to the exact iteration";
  if (d1 > 1e-12) {
    EXPECT_LT(d2, 0.6 * d1)
        << "approximation error must shrink with dt (got " << d1 << " -> "
        << d2 << ")";
  }
}

TEST(CAvsOriginal, ExactIterationMatchesOriginalClosely) {
  // With the approximate iteration disabled, CA differs from the original
  // only by redundant halo computation and smoothing splitting — pure
  // floating-point effects.
  const DycoreConfig cfg = test_config();
  constexpr int kSteps = 2;
  const auto ic = state::InitialCondition::kPlanetaryWave;
  state::State orig, cavar;
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.run(xi, kSteps);
    auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) orig = std::move(g);
  });
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CAOptions opts;
    opts.approximate_iteration = false;
    opts.fresh_c_on_block_face = false;  // exact mode for the comparison
    CACore core(cfg, ctx, {1, 2, 1}, opts);
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.run(xi, kSteps);
    auto g = gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) cavar = std::move(g);
  });
  const double diff =
      state::State::max_abs_diff(orig, cavar, orig.interior());
  EXPECT_LT(diff, 1e-7);
}

TEST(MessageCounts, CAReducesExchangesFrom3MPlus4To2) {
  // The headline communication-frequency claim: the original algorithm
  // performs 3M + 4 neighbor exchanges per step, the CA algorithm 2.
  const DycoreConfig cfg = test_config();  // M = 2 -> 10 vs 2
  const auto ic = state::InitialCondition::kPlanetaryWave;

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    auto before = ctx.stats().phase_totals("stencil");
    core.step(xi);
    auto after = ctx.stats().phase_totals("stencil");
    // 4 items per exchange (U, V, Phi, psa), one neighbor, (3M + 4)
    // exchanges.
    const auto sent = after.p2p_messages - before.p2p_messages;
    EXPECT_EQ(sent, static_cast<std::uint64_t>(4 * (3 * cfg.M + 4)));
  });

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CACore core(cfg, ctx, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.step(xi);  // step 1: no smoothing yet
    auto before = ctx.stats().phase_totals("stencil");
    core.step(xi);  // steady-state step
    auto after = ctx.stats().phase_totals("stencil");
    const auto sent = after.p2p_messages - before.p2p_messages;
    // Exchange 1 carries xi plus the C products plus the fused
    // pre-smoothing rows: U, V, Phi, psa, divsum, sdot, w, phi_geo,
    // pre-Phi, pre-psa = 10 items (the paper's "length of xi being ten");
    // exchange 2 carries U, V, Phi, psa, sdot = 5.  One neighbor each.
    EXPECT_EQ(sent, 15u);
  });
}

TEST(CollectiveCounts, CAUsesTwoThirdsOfOriginalZCollectives) {
  DycoreConfig cfg = test_config();
  cfg.nz = 16;  // the CA deep z-halos need nz/pz >= 3M
  const auto ic = state::InitialCondition::kPlanetaryWave;
  std::uint64_t orig_calls = 0, ca_calls = 0;

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    OriginalCore core(cfg, ctx, DecompScheme::kYZ, {1, 1, 2});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    auto before = ctx.stats().phase_totals("collective");
    core.step(xi);
    auto after = ctx.stats().phase_totals("collective");
    if (ctx.world_rank() == 0)
      orig_calls = after.collective_calls - before.collective_calls;
  });
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CACore core(cfg, ctx, {1, 1, 2});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = ic;
    core.initialize(xi, opt);
    core.step(xi);
    auto before = ctx.stats().phase_totals("collective");
    core.step(xi);
    auto after = ctx.stats().phase_totals("collective");
    if (ctx.world_rank() == 0)
      ca_calls = after.collective_calls - before.collective_calls;
  });
  // Per step the original executes C 3M times, CA 2M times; each C is a
  // fixed number of collective calls (allreduce [+ nested bcast for the
  // ordered algorithm] + exscan), so the ratio must be exactly 2:3.
  EXPECT_GT(ca_calls, 0u);
  EXPECT_EQ(orig_calls * 2, ca_calls * 3)
      << "CA must eliminate exactly one third of the z collectives";
  EXPECT_EQ(orig_calls % (3 * cfg.M), 0u);
}

}  // namespace
}  // namespace ca::core
