// Chaos suite, part 2 — process-level faults: a rank that dies outright
// (kill_rank) or goes silent (hang_rank) mid-campaign.  The comm layer
// must detect the loss within comm.heartbeat_timeout (not the much longer
// receive deadline), and the ensemble service must quarantine the faulty
// pool rank, re-queue the affected job, and finish it from its last
// checkpoint on healthy ranks — bit-for-bit identical to a fault-free run
// when the decomposition survives, within the documented cross-
// decomposition tolerance when the pool had to reshape it.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "comm/context.hpp"
#include "comm/error.hpp"
#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "comm/topology.hpp"
#include "core/exchange.hpp"
#include "mesh/decomp.hpp"
#include "service/replica.hpp"
#include "service/runner.hpp"
#include "service/service.hpp"
#include "state/state.hpp"
#include "util/checkpoint.hpp"
#include "util/config.hpp"
#include "util/json.hpp"

namespace ca {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Watchdog latency bound: far above any heartbeat_timeout used below,
/// far below the 20 s receive deadline a failed watchdog would fall back
/// to.  Detecting at the receive deadline means the heartbeat is dead
/// code, and the test must say so.
constexpr double kDetectBound = 8.0;

comm::FaultRule step_rule(comm::FaultKind kind, int src, int step,
                          int param = 1) {
  comm::FaultRule r;
  r.kind = kind;
  r.src = src;
  r.step = step;
  r.param = param;
  return r;
}

// --- comm layer: detection latency and typed errors ------------------------

TEST(RankFailureComm, KilledRankPoisonsThePeersPromptly) {
  comm::FaultPlan plan(3);
  plan.add_rule(step_rule(comm::FaultKind::kKillRank, /*src=*/0, /*step=*/0));
  comm::RunOptions opts;
  opts.faults = &plan;
  opts.recv_timeout = std::chrono::seconds(20);
  opts.heartbeat_timeout = std::chrono::milliseconds(250);
  const auto start = Clock::now();
  EXPECT_THROW(
      comm::Runtime::run(2, opts,
                         [](comm::Context& ctx) {
                           const auto& w = ctx.world();
                           std::array<double, 4> buf{};
                           ctx.notify_step();  // rank 0 dies here
                           if (ctx.world_rank() == 0) {
                             buf.fill(1.0);
                             ctx.send_values<double>(w, 1, 6, buf);
                           } else {
                             ctx.recv_values<double>(w, 0, 6, buf);
                           }
                         }),
      comm::CommError);
  EXPECT_LT(elapsed_seconds(start), kDetectBound)
      << "the survivor waited out the receive deadline instead of the "
         "poison check";
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_kill, 1u);
  EXPECT_GE(s.detected_peer_dead, 1u);
}

TEST(RankFailureComm, HungRankDetectedWithinHeartbeatTimeout) {
  comm::FaultPlan plan(5);
  // 4 s of silence: far past the 250 ms heartbeat, far short of the 20 s
  // receive deadline, so the measured detection latency tells them apart.
  plan.add_rule(step_rule(comm::FaultKind::kHangRank, /*src=*/0, /*step=*/0,
                          /*param=*/4000));
  comm::RunOptions opts;
  opts.faults = &plan;
  opts.recv_timeout = std::chrono::seconds(20);
  opts.heartbeat_timeout = std::chrono::milliseconds(250);
  const auto start = Clock::now();
  EXPECT_THROW(
      comm::Runtime::run(2, opts,
                         [](comm::Context& ctx) {
                           const auto& w = ctx.world();
                           std::array<double, 4> buf{};
                           ctx.notify_step();  // rank 0 goes silent here
                           if (ctx.world_rank() == 0) {
                             buf.fill(1.0);
                             ctx.send_values<double>(w, 1, 6, buf);
                           } else {
                             ctx.recv_values<double>(w, 0, 6, buf);
                           }
                         }),
      comm::PeerDeadError);
  // The run's wall time includes the hung rank sleeping out its 4 s (the
  // runtime joins every rank), but must stay far below the 20 s receive
  // deadline the survivor would otherwise burn.
  EXPECT_LT(elapsed_seconds(start), kDetectBound);
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_hang, 1u);
  EXPECT_GE(s.detected_peer_dead, 1u)
      << "the hang was never flagged by the heartbeat watchdog";
}

TEST(RankFailureComm, KilledRankUnwindsInFlightAsyncPosts) {
  // kill_rank fires while the victim's async halo posts are in flight:
  // the survivor must unwind out of finish() with the typed error within
  // the heartbeat window, not block on the never-arriving faces until
  // the receive deadline.
  comm::FaultPlan plan(11);
  plan.add_rule(step_rule(comm::FaultKind::kKillRank, /*src=*/0, /*step=*/1));
  comm::RunOptions opts;
  opts.faults = &plan;
  opts.recv_timeout = std::chrono::seconds(20);
  opts.heartbeat_timeout = std::chrono::milliseconds(250);
  const auto start = Clock::now();
  EXPECT_THROW(
      comm::Runtime::run(2, opts,
                         [](comm::Context& ctx) {
                           mesh::LatLonMesh mesh(12, 12, 4);
                           auto topo =
                               comm::make_cart(ctx, ctx.world(), {1, 2, 1},
                                               {true, false, false});
                           mesh::DomainDecomp d(mesh, {1, 2, 1}, topo.coords);
                           util::Array3D<double> f(d.lnx(), d.lny(), d.lnz(),
                                                   util::Halo3{2, 2, 1});
                           f.fill(1.0);
                           core::HaloExchanger ex(ctx, topo, d);
                           std::vector<core::ExchangeItem> items{
                               {&f, nullptr, 0, 2, 1}};
                           for (int step = 0; step < 3; ++step) {
                             ex.post(items, "stencil");
                             ctx.notify_step();  // rank 0 dies at step 1,
                                                 // posts still in flight
                             ex.finish();
                           }
                         }),
      comm::CommError);
  EXPECT_LT(elapsed_seconds(start), kDetectBound)
      << "finish() blocked on the dead rank's faces instead of the "
         "heartbeat unwinding it";
  const auto s = plan.summary();
  EXPECT_EQ(s.injected_kill, 1u);
  EXPECT_GE(s.detected_peer_dead, 1u);
}

TEST(RankFailureComm, KilledRankLeavesPerRankFlightDumps) {
  // The flight recorder: when a rank dies mid-run, every rank's last
  // events must land in obs_dump_rank<r>.json — the victim's dump ends at
  // its injected kill, the survivor's records the detection.
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "ca_agcm_flight_kill")
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  comm::FaultPlan plan(3);
  plan.add_rule(step_rule(comm::FaultKind::kKillRank, /*src=*/0, /*step=*/1));
  comm::RunOptions opts;
  opts.faults = &plan;
  opts.recv_timeout = std::chrono::seconds(20);
  opts.heartbeat_timeout = std::chrono::milliseconds(250);
  opts.obs.dump_on_failure = true;
  opts.obs.dump_dir = dir;
  EXPECT_THROW(
      comm::Runtime::run(2, opts,
                         [](comm::Context& ctx) {
                           const auto& w = ctx.world();
                           std::array<double, 4> buf{};
                           for (int step = 0; step < 3; ++step) {
                             ctx.notify_step();  // rank 0 dies at step 1
                             if (ctx.world_rank() == 0) {
                               buf.fill(1.0);
                               ctx.send_values<double>(w, 1, 6, buf);
                             } else {
                               ctx.recv_values<double>(w, 0, 6, buf);
                             }
                           }
                         }),
      comm::CommError);
  for (int r = 0; r < 2; ++r) {
    const std::string path =
        dir + "/obs_dump_rank" + std::to_string(r) + ".json";
    ASSERT_TRUE(std::filesystem::exists(path))
        << "rank " << r << " left no flight dump";
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const util::Json doc = util::Json::parse(ss.str());
    EXPECT_EQ(doc.find("schema")->as_string(), "ca-agcm/obs-flight/v1");
    EXPECT_EQ(doc.find("rank")->as_double(), static_cast<double>(r));
    EXPECT_FALSE(doc.find("reason")->as_string().empty());
    ASSERT_FALSE(doc.find("events")->items().empty())
        << "rank " << r << "'s dump has no events";
  }
  // The victim's last recorded events are its heartbeats up to the kill;
  // the survivor's dump names the dead peer.
  std::ifstream in0(dir + "/obs_dump_rank0.json");
  std::stringstream ss0;
  ss0 << in0.rdbuf();
  const util::Json d0 = util::Json::parse(ss0.str());
  bool victim_beat = false;
  for (const util::Json& ev : d0.find("events")->items())
    victim_beat |= ev.find("name")->as_string() == "heartbeat";
  EXPECT_TRUE(victim_beat) << "victim dump lacks its pre-kill heartbeats";
  std::ifstream in1(dir + "/obs_dump_rank1.json");
  std::stringstream ss1;
  ss1 << in1.rdbuf();
  const util::Json d1 = util::Json::parse(ss1.str());
  bool peer_dead = false;
  for (const util::Json& ev : d1.find("events")->items())
    peer_dead |= ev.find("name")->as_string() == "peer_dead";
  EXPECT_TRUE(peer_dead) << "survivor dump lacks the peer_dead detection";
  std::filesystem::remove_all(dir);
}

TEST(RankFailureComm, StepFaultFiresOnlyAtItsStep) {
  comm::FaultPlan plan(7);
  plan.add_rule(step_rule(comm::FaultKind::kKillRank, /*src=*/1, /*step=*/3));
  for (std::uint64_t step = 0; step < 6; ++step) {
    EXPECT_EQ(plan.step_fault(1, step).kill, step == 3);
    EXPECT_FALSE(plan.step_fault(0, step).any())
        << "rule scoped to rank 1 fired on rank 0";
  }
  EXPECT_EQ(plan.summary().injected_kill, 1u);
}

TEST(RankFailureComm, FromConfigParsesKillAndHang) {
  const auto cfg = util::Config::from_text(
      "faults.kill_step = 2\n"
      "faults.hang_rank = 0.5\n"
      "faults.hang_ms = 123\n"
      "faults.src = 1\n");
  const comm::FaultPlan plan = comm::FaultPlan::from_config(cfg);
  ASSERT_EQ(plan.rules().size(), 2u);
  EXPECT_EQ(plan.rules()[0].kind, comm::FaultKind::kKillRank);
  EXPECT_EQ(plan.rules()[0].step, 2);
  EXPECT_EQ(plan.rules()[0].src, 1);
  EXPECT_EQ(plan.rules()[1].kind, comm::FaultKind::kHangRank);
  EXPECT_DOUBLE_EQ(plan.rules()[1].probability, 0.5);
  EXPECT_EQ(plan.rules()[1].param, 123);
}

TEST(RankFailureComm, HeartbeatTimeoutComesFromConfig) {
  const auto cfg =
      util::Config::from_text("comm.heartbeat_timeout = 350\n");
  const comm::RunOptions opts = comm::RunOptions::from_config(cfg);
  EXPECT_EQ(opts.heartbeat_timeout, std::chrono::milliseconds(350));
  EXPECT_EQ(comm::RunOptions::from_config(util::Config{}).heartbeat_timeout,
            std::chrono::milliseconds(0))
      << "the watchdog must stay off by default";
}

// --- service layer: quarantine + checkpoint recovery -----------------------

namespace svc = ca::service;

core::DycoreConfig small_config() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

std::string temp_dir(const std::string& tag) {
  const auto p =
      std::filesystem::temp_directory_path() / ("ca_rank_failure_" + tag);
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

state::State solo_run(svc::JobSpec spec, const std::string& prefix) {
  spec.faults = comm::FaultPlan();
  spec.node_faults.clear();
  spec.checkpoint_every = 0;
  spec.comm = comm::RunOptions{};
  svc::AttemptResult r = svc::run_attempt(spec, 1, 0, prefix, {});
  EXPECT_TRUE(r.completed(spec.steps))
      << "solo reference for '" << spec.name << "' failed: " << r.error;
  return std::move(r.global);
}

/// A preemptible 4-step job with a node-resident fault on POOL rank 0,
/// fired at attempt-local step 1 — after the first step's checkpoint, so
/// recovery genuinely resumes instead of recomputing.
svc::JobSpec faulted_spec(const std::string& name, svc::CoreKind core,
                          std::array<int, 3> dims, comm::FaultKind kind,
                          int hang_ms = 1500) {
  svc::JobSpec s;
  s.name = name;
  s.core = core;
  s.config = small_config();
  s.dims = dims;
  s.steps = 4;
  s.checkpoint_every = 1;
  s.node_faults.push_back(step_rule(
      kind, /*src=*/0, /*step=*/1,
      kind == comm::FaultKind::kHangRank ? hang_ms : 1));
  s.comm.recv_timeout = std::chrono::seconds(20);
  s.comm.heartbeat_timeout = std::chrono::milliseconds(250);
  return s;
}

struct CoreCase {
  const char* tag;
  svc::CoreKind core;
  std::array<int, 3> dims;
};

const CoreCase kCoreCases[] = {
    {"serial", svc::CoreKind::kSerial, {1, 1, 1}},
    {"original", svc::CoreKind::kOriginal, {1, 2, 1}},
    {"ca", svc::CoreKind::kCA, {1, 2, 1}},
};

TEST(RankFailureService, KillRecoversBitwiseUnderEveryCore) {
  for (const CoreCase& c : kCoreCases) {
    SCOPED_TRACE(c.tag);
    const std::string dir = temp_dir(std::string("kill_") + c.tag);
    const svc::JobSpec spec =
        faulted_spec(c.tag, c.core, c.dims, comm::FaultKind::kKillRank);
    const state::State reference = solo_run(spec, dir + "/solo");

    svc::ServiceOptions opt;
    opt.slots = 2;
    opt.rank_budget = 4;
    opt.checkpoint_dir = dir;
    // Keep the struck rank benched for the whole test so the retry is
    // deterministically placed on healthy ranks (the node fault drops).
    opt.quarantine_seconds = 60.0;
    svc::EnsembleService service(opt);
    const int id = service.submit(spec);
    service.wait(id);

    const svc::JobResult r = service.result(id);
    ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.error;
    EXPECT_GE(r.metrics.rank_recoveries, 1)
        << "the kill never fired; the scenario is vacuous";
    EXPECT_EQ(r.metrics.attempts, 1)
        << "a rank death must not burn the job's attempt budget";
    EXPECT_GE(r.faults.injected_kill, 1u);
    const double diff = state::State::max_abs_diff(
        r.final_state, reference, reference.interior());
    EXPECT_EQ(diff, 0.0)
        << "checkpoint recovery diverged from the fault-free run";

    const util::Json report = service.report();
    EXPECT_EQ(svc::validate_report(report), "");
    const util::Json* health = report.find("health");
    ASSERT_NE(health, nullptr);
    EXPECT_GE(health->find("quarantines")->as_double(), 1.0);
    EXPECT_GE(health->find("jobs_recovered")->as_double(), 1.0);
    EXPECT_GT(health->find("degraded_rank_seconds")->as_double(), 0.0);
  }
}

TEST(RankFailureService, HangRecoversBitwiseUnderEveryCore) {
  for (const CoreCase& c : kCoreCases) {
    SCOPED_TRACE(c.tag);
    const std::string dir = temp_dir(std::string("hang_") + c.tag);
    const svc::JobSpec spec =
        faulted_spec(c.tag, c.core, c.dims, comm::FaultKind::kHangRank);
    const state::State reference = solo_run(spec, dir + "/solo");

    svc::ServiceOptions opt;
    opt.slots = 2;
    opt.rank_budget = 4;
    opt.checkpoint_dir = dir;
    opt.quarantine_seconds = 60.0;
    svc::EnsembleService service(opt);
    const int id = service.submit(spec);
    service.wait(id);

    const svc::JobResult r = service.result(id);
    ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.error;
    EXPECT_GE(r.faults.injected_hang, 1u);
    if (c.core == svc::CoreKind::kSerial) {
      // A serial job has no peers to starve: the hang is just a slow
      // step, tolerated without any recovery machinery.
      EXPECT_EQ(r.metrics.rank_recoveries, 0);
    } else {
      EXPECT_GE(r.metrics.rank_recoveries, 1)
          << "the hang was never detected; the scenario is vacuous";
      EXPECT_GE(r.faults.detected_peer_dead, 1u);
    }
    const double diff = state::State::max_abs_diff(
        r.final_state, reference, reference.interior());
    EXPECT_EQ(diff, 0.0)
        << "hang recovery diverged from the fault-free run";
    EXPECT_EQ(svc::validate_report(service.report()), "");
  }
}

TEST(RankFailureService, CircuitBreakerRetiresAndReshapesTheJob) {
  // Budget 2, one strike allowed: the kill retires pool rank 0 outright,
  // the 2-rank job no longer fits the 1 usable rank, and the pool must
  // re-factorize it to {1,1,1} (original core: plain field state, legal
  // to reshard) and finish it there.  Cross-decomposition runs of the
  // original core agree to ~1e-8, not bitwise — assert that tolerance.
  const std::string dir = temp_dir("reshape");
  svc::JobSpec spec = faulted_spec("reshape", svc::CoreKind::kOriginal,
                                   {1, 2, 1}, comm::FaultKind::kKillRank);
  const state::State reference = solo_run(spec, dir + "/solo");

  svc::ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = dir;
  opt.max_rank_strikes = 1;
  svc::EnsembleService service(opt);
  const int id = service.submit(spec);
  service.wait(id);

  const svc::JobResult r = service.result(id);
  ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.error;
  EXPECT_GE(r.metrics.rank_recoveries, 1);
  const double diff = state::State::max_abs_diff(r.final_state, reference,
                                                 reference.interior());
  EXPECT_LT(diff, 1e-8) << "reshaped resume diverged beyond the "
                           "cross-decomposition tolerance";

  EXPECT_EQ(service.ranks_retired(), 1);
  const util::Json report = service.report();
  EXPECT_EQ(svc::validate_report(report), "");
  bool saw_retired = false;
  for (const auto& rank :
       report.find("health")->find("ranks")->items())
    saw_retired |= rank.find("status")->as_string() == "retired";
  EXPECT_TRUE(saw_retired);
  const util::Json* job = &report.find("jobs")->items()[0];
  const auto& active = job->find("active_dims")->items();
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0].as_double() * active[1].as_double() *
                active[2].as_double(),
            1.0)
      << "the job was not reshaped onto the single surviving rank";
}

/// Exact-mode CA switches: block-wide fresh C and no stale-C reuse keep
/// the trajectory bitwise invariant to the y split, so a py-changing
/// reshard must resume bit-for-bit against any same-pz reference.
core::CAOptions exact_ca_options() {
  core::CAOptions o;
  o.fresh_c_on_block_face = false;
  o.approximate_iteration = false;
  return o;
}

TEST(RankFailureService, CAJobReshardsOntoTheSurvivorsBitwise) {
  // The degraded pool that used to fail CA jobs loudly: the kill retires
  // pool rank 0, the 2-rank CA job no longer fits the 1 usable rank, and
  // the pool reshards its checkpoint set — cross-step carry included —
  // onto {1,1,1}.  In exact mode the y split is bitwise transparent, so
  // the resumed job must finish bit-for-bit against the uninterrupted
  // reference, without burning an attempt.
  const std::string dir = temp_dir("ca_degraded");
  svc::JobSpec spec = faulted_spec("ca_degraded", svc::CoreKind::kCA,
                                   {1, 2, 1}, comm::FaultKind::kKillRank);
  spec.ca_options = exact_ca_options();
  const state::State reference = solo_run(spec, dir + "/solo");
  ASSERT_GT(reference.interior().volume(), 0);

  svc::ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = dir;
  opt.max_rank_strikes = 1;
  svc::EnsembleService service(opt);
  const int id = service.submit(spec);
  service.wait(id);

  const svc::JobResult r = service.result(id);
  ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.error;
  EXPECT_GE(r.metrics.rank_recoveries, 1)
      << "the kill never fired; the scenario is vacuous";
  EXPECT_EQ(r.metrics.attempts, 1)
      << "a degraded-pool reshard must not burn the job's attempt budget";
  const double diff = state::State::max_abs_diff(r.final_state, reference,
                                                 reference.interior());
  EXPECT_EQ(diff, 0.0)
      << "the resharded CA resume diverged from the uninterrupted run";

  EXPECT_EQ(service.ranks_retired(), 1);
  const util::Json report = service.report();
  EXPECT_EQ(svc::validate_report(report), "");
  const auto& active = report.find("jobs")->items()[0].find("active_dims")
                           ->items();
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0].as_double() * active[1].as_double() *
                active[2].as_double(),
            1.0)
      << "the CA job was not reshaped onto the single surviving rank";
}

TEST(RankFailureService, ReshapeInvalidatesStaleShapedReplicas) {
  // Replicas deposited under the old decomposition are useless after a
  // reshape — a RAM-first restore must not fetch a stale-shaped image.
  // With replication on, the same degraded-pool scenario must drop the
  // {1,2,1}-shaped copies when the job reshapes to {1,1,1} and restore
  // from the resharded on-disk set instead, still bit-for-bit.
  const std::string dir = temp_dir("ca_replica_reshape");
  svc::JobSpec spec = faulted_spec("ca_replica_reshape", svc::CoreKind::kCA,
                                   {1, 2, 1}, comm::FaultKind::kKillRank);
  spec.ca_options = exact_ca_options();
  const state::State reference = solo_run(spec, dir + "/solo");

  svc::ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = dir;
  opt.max_rank_strikes = 1;  // the kill retires pool rank 0 -> reshape
  opt.replicate = true;
  svc::EnsembleService service(opt);
  const int id = service.submit(spec);
  service.wait(id);

  const svc::JobResult r = service.result(id);
  ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.error;
  EXPECT_GE(r.metrics.rank_recoveries, 1);
  EXPECT_EQ(r.metrics.ram_restores, 0)
      << "a stale-shaped RAM replica was fetched after the reshape";
  EXPECT_GE(r.metrics.disk_restores, 1)
      << "the resumed attempt never restored from the resharded set";
  const double diff = state::State::max_abs_diff(r.final_state, reference,
                                                 reference.interior());
  EXPECT_EQ(diff, 0.0)
      << "the post-reshape disk restore diverged from the uninterrupted run";
  EXPECT_EQ(svc::validate_report(service.report()), "");
}

// --- in-memory buddy replication -------------------------------------------

TEST(RankFailureService, ReplicatedKillRecoversFromBuddyRamWithoutDisk) {
  // The tentpole acceptance scenario: with replication on, a killed
  // rank's job resumes bit-for-bit from the surviving buddy's RAM copy —
  // the victim's own image survives as the copy it streamed to rank
  // (victim+1) % n every cadence — and the restore touches NO checkpoint
  // file.  The I/O counters prove the "zero disk reads" claim instead of
  // trusting the provenance enum alone.
  for (const CoreCase& c : kCoreCases) {
    if (c.core == svc::CoreKind::kSerial) continue;  // no peers to kill
    SCOPED_TRACE(c.tag);
    const std::string dir = temp_dir(std::string("replica_") + c.tag);
    const svc::JobSpec spec =
        faulted_spec(c.tag, c.core, c.dims, comm::FaultKind::kKillRank);
    const state::State reference = solo_run(spec, dir + "/solo");

    svc::ServiceOptions opt;
    opt.slots = 2;
    opt.rank_budget = 4;
    opt.checkpoint_dir = dir;
    opt.quarantine_seconds = 60.0;
    opt.replicate = true;
    opt.delta_chain = 4;  // delta chains and replication compose
    svc::EnsembleService service(opt);

    util::reset_checkpoint_io();
    const int id = service.submit(spec);
    service.wait(id);

    const svc::JobResult r = service.result(id);
    ASSERT_EQ(r.state, svc::JobState::kCompleted) << r.error;
    EXPECT_GE(r.metrics.rank_recoveries, 1)
        << "the kill never fired; the scenario is vacuous";
    EXPECT_GE(r.metrics.ram_restores, 1)
        << "recovery fell back to disk despite a complete RAM set";
    EXPECT_EQ(r.metrics.disk_restores, 0);
    EXPECT_EQ(util::checkpoint_io().files_read, 0u)
        << "a RAM restore must not read any checkpoint file";
    EXPECT_GT(r.metrics.restore_seconds, 0.0);
    const double diff = state::State::max_abs_diff(
        r.final_state, reference, reference.interior());
    EXPECT_EQ(diff, 0.0)
        << "RAM recovery diverged from the fault-free run";

    const util::Json report = service.report();
    EXPECT_EQ(svc::validate_report(report), "");
    const util::Json* health = report.find("health");
    ASSERT_NE(health, nullptr);
    EXPECT_GT(health->find("replica_deposits")->as_double(), 0.0);
    const util::Json* job = &report.find("jobs")->items()[0];
    EXPECT_GE(job->find("ram_restores")->as_double(), 1.0);
  }
}

TEST(RankFailureService, CorruptReplicasFallBackToDiskBitwise) {
  // Runner-level twin with deterministic control of the replica store:
  // first the RAM path (provenance kRam, zero file reads), then — after
  // poisoning every stored copy — the identical resume must detect the
  // CRC mismatch, fall back to the on-disk chain (provenance kDisk), and
  // still finish bit-for-bit.
  const std::string dir = temp_dir("replica_fallback");
  svc::JobSpec spec = faulted_spec("replica_fallback", svc::CoreKind::kCA,
                                   {1, 2, 1}, comm::FaultKind::kKillRank);
  const state::State reference = solo_run(spec, dir + "/solo");

  svc::ReplicaStore store;
  svc::AttemptOptions o1;
  o1.attempt = 1;
  o1.checkpoint_prefix = dir + "/job";
  o1.replicas = &store;
  o1.delta_chain = 4;
  const svc::AttemptResult a1 = svc::run_attempt(spec, o1);
  ASSERT_EQ(a1.dead_rank, 0) << a1.error;
  ASSERT_GT(store.deposits(), 0u) << "no cadence ever replicated";
  // What the pool does on a dead rank: its RAM is gone.
  store.invalidate_depositor(o1.checkpoint_prefix, 0);

  svc::JobSpec clean = spec;
  clean.node_faults.clear();

  // RAM path first.
  util::reset_checkpoint_io();
  svc::AttemptOptions o2 = o1;
  o2.attempt = 2;
  o2.start_step = 1;
  const svc::AttemptResult a2 = svc::run_attempt(clean, o2);
  ASSERT_TRUE(a2.completed(spec.steps)) << a2.error;
  EXPECT_EQ(a2.restored_from, svc::RestoreSource::kRam);
  EXPECT_EQ(util::checkpoint_io().files_read, 0u);
  EXPECT_EQ(state::State::max_abs_diff(a2.global, reference,
                                       reference.interior()),
            0.0);

  // Re-kill nothing, but poison the store: CRC validation must reject
  // every copy and the SAME resume must come off disk, still bitwise.
  store.corrupt_for_test(o1.checkpoint_prefix, 0);
  store.corrupt_for_test(o1.checkpoint_prefix, 1);
  util::reset_checkpoint_io();
  svc::AttemptOptions o3 = o2;
  o3.attempt = 3;
  const svc::AttemptResult a3 = svc::run_attempt(clean, o3);
  ASSERT_TRUE(a3.completed(spec.steps)) << a3.error;
  EXPECT_EQ(a3.restored_from, svc::RestoreSource::kDisk);
  EXPECT_GT(util::checkpoint_io().files_read, 0u)
      << "the disk fallback never touched a file?";
  EXPECT_EQ(state::State::max_abs_diff(a3.global, reference,
                                       reference.interior()),
            0.0)
      << "disk fallback diverged from the fault-free run";
}

TEST(RankFailureService, SubmitAfterRetirementDoesNotWedgeThePool) {
  // Regression: the over-demand sweep used to run only at the instant a
  // rank retired.  A job entering the queue AFTER that — validate()
  // checks the full rank_budget, not the degraded one — waited forever
  // for capacity that cannot return, deadlocking drain()/shutdown().
  // Every queue entry must be checked: late submits of BOTH distributed
  // cores are refit onto the survivors and complete.
  const std::string dir = temp_dir("late_submit");
  const svc::JobSpec bait = faulted_spec(
      "bait", svc::CoreKind::kOriginal, {1, 2, 1}, comm::FaultKind::kKillRank);

  svc::ServiceOptions opt;
  opt.slots = 1;
  opt.rank_budget = 2;
  opt.checkpoint_dir = dir;
  opt.max_rank_strikes = 1;  // the bait's kill retires pool rank 0
  svc::EnsembleService service(opt);
  const int bait_id = service.submit(bait);
  service.wait(bait_id);
  ASSERT_EQ(service.ranks_retired(), 1);

  // A late CA submit is refit to the surviving rank before it ever runs
  // (no checkpoint yet, so no reshard is involved); exact mode makes the
  // narrower run bitwise-equal to the requested shape's trajectory.
  svc::JobSpec ca = faulted_spec("late_ca", svc::CoreKind::kCA, {1, 2, 1},
                                 comm::FaultKind::kKillRank);
  ca.node_faults.clear();
  ca.ca_options = exact_ca_options();
  const state::State ca_reference = solo_run(ca, dir + "/late_ca_solo");
  const int ca_id = service.submit(ca);
  service.wait(ca_id);
  const svc::JobResult ca_r = service.result(ca_id);
  ASSERT_EQ(ca_r.state, svc::JobState::kCompleted) << ca_r.error;
  EXPECT_EQ(state::State::max_abs_diff(ca_r.final_state, ca_reference,
                                       ca_reference.interior()),
            0.0)
      << "the refit late CA submit diverged from the requested-shape run";

  // The original core reshapes to the surviving rank and completes.
  svc::JobSpec orig = faulted_spec("late_orig", svc::CoreKind::kOriginal,
                                   {1, 2, 1}, comm::FaultKind::kKillRank);
  orig.node_faults.clear();
  const state::State reference = solo_run(orig, dir + "/late_solo");
  const int orig_id = service.submit(orig);
  service.wait(orig_id);
  const svc::JobResult orig_r = service.result(orig_id);
  ASSERT_EQ(orig_r.state, svc::JobState::kCompleted) << orig_r.error;
  const double diff = state::State::max_abs_diff(
      orig_r.final_state, reference, reference.interior());
  EXPECT_LT(diff, 1e-8)
      << "reshaped late submit diverged beyond the cross-decomposition "
         "tolerance";
  service.drain();  // the wedge regression: this used to block forever
}

}  // namespace
}  // namespace ca
