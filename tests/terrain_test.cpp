// Terrain (surface geopotential): the sigma coordinate following a
// mountain.  Flat terrain must be bitwise identical to the no-terrain
// path; a hydrostatically initialized mountain state must stay
// near-steady (the classic sigma-coordinate pressure-gradient error stays
// small); the distributed runs must agree.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "core/serial_core.hpp"
#include "state/initial.hpp"
#include "util/math.hpp"

namespace ca {
namespace {

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 32;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  return c;
}

TEST(Terrain, FlatTerrainIsBitwiseIdenticalToNoTerrain) {
  const auto c = cfg();
  core::SerialCore a(c), b(c);
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const auto halo = core::halos_for_depth(1);
  auto flat = state::make_terrain(mesh, a.decomp(), halo.hx2, halo.hy2,
                                  [](double, double) { return 0.0; });
  b.set_terrain(&flat);

  auto xa = a.make_state();
  auto xb = b.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  a.initialize(xa, opt);
  b.initialize(xb, opt);
  a.run(xa, 2);
  b.run(xb, 2);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xa, xb, xa.interior()), 0.0);
}

TEST(Terrain, GaussianMountainEvaluatesConsistently) {
  mesh::LatLonMesh mesh(32, 16, 8);
  auto fn = state::gaussian_mountain(2000.0, util::kPi, util::kPi / 2,
                                     0.5);
  EXPECT_NEAR(fn(util::kPi, util::kPi / 2), util::kGravity * 2000.0, 1e-6);
  EXPECT_LT(fn(0.0, util::kPi / 2), 0.01 * util::kGravity * 2000.0)
      << "antipode must be nearly flat";
  // Decomposition invariance of the evaluated field.
  mesh::DomainDecomp whole(mesh, {1, 1, 1}, {0, 0, 0});
  mesh::DomainDecomp part(mesh, {1, 2, 1}, {0, 1, 0});
  auto g_all = state::make_terrain(mesh, whole, 3, 3, fn);
  auto g_part = state::make_terrain(mesh, part, 3, 3, fn);
  for (int j = 0; j < part.lny(); ++j)
    for (int i = 0; i < 32; ++i)
      EXPECT_DOUBLE_EQ(g_part(i, j), g_all(i, part.gj(j)));
}

TEST(Terrain, HydrostaticRestStateOverMountainStaysNearSteady) {
  const auto c = cfg();
  core::SerialCore core(c);
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const auto halo = core::halos_for_depth(1);
  auto mountain = state::make_terrain(
      mesh, core.decomp(), halo.hx2, halo.hy2,
      state::gaussian_mountain(1500.0, util::kPi, util::kPi / 2, 0.6));
  core.set_terrain(&mountain);

  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kRestIsothermal;
  core.initialize(xi, opt);
  state::apply_terrain_surface_pressure(xi, core.strat(), mountain,
                                        core.decomp());
  core.fill_boundaries(xi);

  core.run(xi, 10);
  const auto d = core::local_diagnostics(core.op_context(), xi);
  EXPECT_TRUE(std::isfinite(d.total_energy()));
  // The discrete hydrostatic balance is not exact (the classic
  // sigma-coordinate PGF error + the isothermal-vs-stratified mismatch),
  // but spurious winds must stay a small fraction of real flows.
  EXPECT_LT(d.max_abs_u, 8.0)
      << "spurious mountain winds must stay weak (PGF error)";
  EXPECT_LT(d.max_abs_v, 8.0);
}

TEST(Terrain, MountainTorqueSpinsUpFlowFromUniformWind) {
  // A zonal jet hitting a mountain must develop meridional flow (flow
  // deflection) — terrain must actually couple into the dynamics.
  const auto c = cfg();
  core::SerialCore flat_core(c), mtn_core(c);
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const auto halo = core::halos_for_depth(1);
  auto mountain = state::make_terrain(
      mesh, mtn_core.decomp(), halo.hx2, halo.hy2,
      state::gaussian_mountain(1500.0, util::kPi / 2, util::kPi / 3, 0.5));
  mtn_core.set_terrain(&mountain);

  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  auto xf = flat_core.make_state();
  auto xm = mtn_core.make_state();
  flat_core.initialize(xf, opt);
  mtn_core.initialize(xm, opt);
  state::apply_terrain_surface_pressure(xm, mtn_core.strat(), mountain,
                                        mtn_core.decomp());
  mtn_core.fill_boundaries(xm);

  flat_core.run(xf, 5);
  mtn_core.run(xm, 5);
  const double diff = state::State::max_abs_diff(xf, xm, xf.interior());
  EXPECT_GT(diff, 1e-3) << "the mountain must alter the flow";
  const auto d = core::local_diagnostics(mtn_core.op_context(), xm);
  EXPECT_TRUE(std::isfinite(d.total_energy()));
  EXPECT_LT(d.max_abs_u, 200.0);
}

TEST(Terrain, DistributedRunMatchesSerial) {
  const auto c = cfg();
  auto fn = state::gaussian_mountain(1200.0, util::kPi, util::kPi / 2, 0.6);
  const auto halo = core::halos_for_depth(1);
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);

  core::SerialCore serial(c);
  auto terrain_s =
      state::make_terrain(mesh, serial.decomp(), halo.hx2, halo.hy2, fn);
  serial.set_terrain(&terrain_s);
  auto ref = serial.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  serial.initialize(ref, opt);
  state::apply_terrain_surface_pressure(ref, serial.strat(), terrain_s,
                                        serial.decomp());
  serial.fill_boundaries(ref);
  serial.run(ref, 2);

  comm::Runtime::run(4, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 2});
    auto terrain =
        state::make_terrain(mesh, core.decomp(), halo.hx2, halo.hy2, fn);
    core.set_terrain(&terrain);
    auto xi = core.make_state();
    core.initialize(xi, opt);
    state::apply_terrain_surface_pressure(xi, core.strat()
                                              /* via op_context */,
                                          terrain, core.decomp());
    core.refresh_halos(xi, "init");
    core.run(xi, 2);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) {
      EXPECT_LT(state::State::max_abs_diff(g, ref, ref.interior()), 1e-8)
          << "terrain runs must be decomposition-invariant";
    }
  });
}

}  // namespace
}  // namespace ca
