// Coalesced halo exchange: packing every item bound for one neighbor into
// a single message must be invisible to the numerics (bitwise-identical
// final states, with and without fault injection), must strictly reduce
// message counts, and — together with the filter workspace — must reach an
// allocation-free steady state after one warm-up step.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <mutex>

#include "comm/fault.hpp"
#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"

namespace ca::core {
namespace {

DycoreConfig test_config() {
  DycoreConfig c;
  c.nx = 24;
  // 32 rows keep ny/py >= 3M + 1 for the CA core's deep halos at py = 4.
  c.ny = 32;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  // Ordered z reduction keeps the two modes bitwise comparable.
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

struct RunTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t pool_allocations = 0;
};

/// Runs `steps` of the CA core on p ranks and returns the gathered state
/// (valid on return; gathered to logical rank 0).
state::State run_ca(int p, int steps, bool coalesce, comm::FaultPlan* plan,
                    RunTotals* totals = nullptr) {
  const DycoreConfig base = test_config();
  state::State global;
  std::mutex mu;
  comm::RunOptions opts;
  opts.faults = plan;
  comm::Runtime::run(p, opts, [&](comm::Context& ctx) {
    DycoreConfig cfg = base;
    cfg.coalesce_exchange = coalesce;
    CACore core(cfg, ctx, {1, p, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    core.run(xi, steps);
    state::State g = gather_global(core.op_context(), ctx,
                                   core.topology(), xi);
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.world_rank() == 0) global = std::move(g);
    if (totals != nullptr) {
      const auto t = ctx.stats().grand_totals();
      totals->messages += t.p2p_messages;
      totals->bytes += t.p2p_bytes;
      totals->pool_allocations += ctx.stats().pool().allocations;
    }
  });
  return global;
}

state::State run_original(DecompScheme scheme, std::array<int, 3> dims,
                          int steps, bool coalesce,
                          RunTotals* totals = nullptr) {
  const DycoreConfig base = test_config();
  const int p = dims[0] * dims[1] * dims[2];
  state::State global;
  std::mutex mu;
  comm::Runtime::run(p, [&](comm::Context& ctx) {
    DycoreConfig cfg = base;
    cfg.coalesce_exchange = coalesce;
    OriginalCore core(cfg, ctx, scheme, dims);
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    core.run(xi, steps);
    state::State g = gather_global(core.op_context(), ctx,
                                   core.topology(), xi);
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.world_rank() == 0) global = std::move(g);
    if (totals != nullptr) {
      const auto t = ctx.stats().grand_totals();
      totals->messages += t.p2p_messages;
      totals->bytes += t.p2p_bytes;
      totals->pool_allocations += ctx.stats().pool().allocations;
    }
  });
  return global;
}

TEST(CoalescedExchange, BitwiseIdenticalOnCACore) {
  constexpr int kSteps = 2;
  RunTotals per_item, coalesced;
  state::State a = run_ca(4, kSteps, false, nullptr, &per_item);
  state::State b = run_ca(4, kSteps, true, nullptr, &coalesced);
  const double diff = state::State::max_abs_diff(a, b, a.interior());
  EXPECT_EQ(diff, 0.0) << "coalescing must not change a single bit";
  EXPECT_LT(coalesced.messages, per_item.messages)
      << "one message per neighbor must beat one per (neighbor, item)";
  EXPECT_EQ(coalesced.bytes, per_item.bytes)
      << "coalescing repacks the same doubles; payload volume is invariant";
}

TEST(CoalescedExchange, BitwiseIdenticalOnOriginalCoreAllAxes) {
  constexpr int kSteps = 2;
  // Covers x-axis neighbors + the distributed filter (kXY) and z-axis
  // neighbors + the z-line collectives (kYZ with pz > 1).
  const struct {
    DecompScheme scheme;
    std::array<int, 3> dims;
  } cases[] = {
      {DecompScheme::kXY, {2, 2, 1}},
      {DecompScheme::kYZ, {1, 2, 2}},
  };
  for (const auto& c : cases) {
    RunTotals per_item, coalesced;
    state::State a =
        run_original(c.scheme, c.dims, kSteps, false, &per_item);
    state::State b =
        run_original(c.scheme, c.dims, kSteps, true, &coalesced);
    const double diff = state::State::max_abs_diff(a, b, a.interior());
    EXPECT_EQ(diff, 0.0)
        << "dims " << c.dims[0] << "x" << c.dims[1] << "x" << c.dims[2];
    EXPECT_LT(coalesced.messages, per_item.messages);
  }
}

TEST(CoalescedExchange, BitwiseIdenticalUnderFaultPlan) {
  constexpr int kSteps = 2;
  state::State reference = run_ca(4, kSteps, false, nullptr);

  comm::FaultPlan plan(/*seed=*/1234);
  comm::FaultRule delay;
  delay.kind = comm::FaultKind::kDelay;
  delay.probability = 0.10;
  delay.param = 3;
  plan.add_rule(delay);
  comm::FaultRule dup;
  dup.kind = comm::FaultKind::kDuplicate;
  dup.probability = 0.10;
  plan.add_rule(dup);

  state::State faulted = run_ca(4, kSteps, true, &plan);
  EXPECT_GT(plan.summary().injected_total(), 0u)
      << "plan must actually fire for this test to mean anything";
  const double diff =
      state::State::max_abs_diff(reference, faulted, reference.interior());
  EXPECT_EQ(diff, 0.0)
      << "recovered faults must not change the coalesced answer";
}

TEST(SteadyState, ExchangePoolsStopGrowingAfterWarmup) {
  for (bool coalesce : {false, true}) {
    comm::Runtime::run(4, [&](comm::Context& ctx) {
      DycoreConfig cfg = test_config();
      cfg.coalesce_exchange = coalesce;
      CACore core(cfg, ctx, {1, 4, 1});
      auto xi = core.make_state();
      state::InitialOptions opt;
      opt.kind = state::InitialCondition::kPlanetaryWave;
      core.initialize(xi, opt);
      // Warm-up: two steps, because the CA core's first step exchanges a
      // smaller item set (no previous state yet) — capacities converge
      // once every exchange shape has run once.
      core.step(xi);
      core.step(xi);
      const std::uint64_t allocs = ctx.stats().pool().allocations;
      const std::uint64_t reuses = ctx.stats().pool().reuses;
      EXPECT_GT(allocs, 0u) << "warm-up must have populated the pools";
      core.step(xi);
      core.step(xi);
      EXPECT_EQ(ctx.stats().pool().allocations, allocs)
          << (coalesce ? "coalesced" : "per-item")
          << " exchange grew a pool buffer after warm-up";
      EXPECT_GT(ctx.stats().pool().reuses, reuses)
          << "steady-state steps must be served from the pools";
      core.finalize(xi);
    });
  }
}

TEST(SteadyState, FilterWorkspaceStopsGrowingAfterWarmup) {
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    CACore core(test_config(), ctx, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    core.run(xi, 1);
    const std::uint64_t allocs = core.filter().workspace_allocations();
    const std::uint64_t reuses = core.filter().workspace_reuses();
    EXPECT_GT(allocs, 0u);
    core.run(xi, 2);
    EXPECT_EQ(core.filter().workspace_allocations(), allocs)
        << "FFT/filter workspace grew after warm-up";
    EXPECT_GT(core.filter().workspace_reuses(), reuses);
  });
}

TEST(ExchangeApi, CoalesceFlagRoundTrips) {
  comm::Runtime::run(1, [&](comm::Context& ctx) {
    DycoreConfig cfg = test_config();
    cfg.coalesce_exchange = true;
    CACore core(cfg, ctx, {1, 1, 1});
    EXPECT_TRUE(core.exchanger().coalesce());
    DycoreConfig cfg2 = test_config();
    CACore core2(cfg2, ctx, {1, 1, 1});
    EXPECT_FALSE(core2.exchanger().coalesce())
        << "per-item must stay the default (paper message counts)";
  });
}

}  // namespace
}  // namespace ca::core
