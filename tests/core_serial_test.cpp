// Serial reference core: exact rest-state preservation, stability on
// smooth initial conditions, conservation of the quadratic invariant
// under pure advection, and basic diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diagnostics.hpp"
#include "core/exchange.hpp"
#include "core/serial_core.hpp"
#include "ops/advection.hpp"
#include "ops/tendency.hpp"
#include "state/transforms.hpp"

namespace ca::core {
namespace {

DycoreConfig small_config() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 12;
  c.nz = 6;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  return c;
}

TEST(SerialCore, RestStateIsExactFixedPoint) {
  SerialCore core(small_config());
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kRestIsothermal;
  core.initialize(xi, opt);
  auto zero = core.make_state();
  core.run(xi, 3);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(xi, zero, xi.interior()), 0.0)
      << "an isothermal rest state must be an exact discrete fixed point";
}

TEST(SerialCore, RestTendenciesVanish) {
  SerialCore core(small_config());
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kRestIsothermal;
  core.initialize(xi, opt);
  auto tend = core.make_state();
  tend.fill(999.0);
  core.adaptation_tendency(xi, tend);
  auto zero = core.make_state();
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(tend, zero, xi.interior()),
                   0.0);
  tend.fill(999.0);
  core.advection_tendency(xi, tend);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(tend, zero, xi.interior()),
                   0.0);
}

TEST(SerialCore, CoriolisDeflectsWesterliesToTheRight) {
  // A uniform physical westerly over a flat isothermal atmosphere feels
  // only the (effective) Coriolis force: rightward deflection, i.e.
  // southward (V > 0 in this convention) in the northern hemisphere and
  // northward in the southern.
  const auto cfg = small_config();
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kRestIsothermal;
  core.initialize(xi, opt);
  for (int k = 0; k < cfg.nz; ++k)
    for (int j = 0; j < cfg.ny; ++j)
      for (int i = 0; i < cfg.nx; ++i)
        xi.u()(i, j, k) =
            10.0 * state::p_factor_u(xi.psa(), core.strat(), i, j);
  core.fill_boundaries(xi);
  auto tend = core.make_state();
  core.adaptation_tendency(xi, tend);
  // Interior V rows (v(j) sits between theta rows j and j+1; skip the
  // pole-adjacent rows where the flux is pinned to zero).
  double north = 0.0, south = 0.0;
  for (int k = 0; k < cfg.nz; ++k)
    for (int i = 0; i < cfg.nx; ++i) {
      for (int j = 1; j < cfg.ny / 2 - 1; ++j) north += tend.v()(i, j, k);
      for (int j = cfg.ny / 2 + 1; j < cfg.ny - 1; ++j)
        south += tend.v()(i, j, k);
    }
  EXPECT_GT(north, 0.0) << "NH westerly must accelerate southward (right)";
  EXPECT_LT(south, 0.0) << "SH westerly must accelerate northward (right)";
}

TEST(SerialCore, PressureGradientForceOpposesGradient) {
  // A zonal warm/cold wave in Phi raises the hydrostatic geopotential
  // over warm columns; the adaptation force on u must point DOWN that
  // geopotential gradient (inner product strictly negative).
  const auto cfg = small_config();
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kRestIsothermal;
  core.initialize(xi, opt);
  for (int k = 0; k < cfg.nz; ++k)
    for (int j = 0; j < cfg.ny; ++j)
      for (int i = 0; i < cfg.nx; ++i)
        xi.phi()(i, j, k) =
            5.0 * std::sin(2.0 * util::kPi * i / cfg.nx);
  core.fill_boundaries(xi);

  ops::DiagWorkspace ws(cfg.nx, cfg.ny, cfg.nz, halos_for_depth(1));
  compute_diagnostics(core.op_context(), nullptr, nullptr, xi,
                      xi.interior(), ws, false,
                      comm::AllreduceAlgorithm::kAuto, "test");
  auto tend = core.make_state();
  core.adaptation_tendency(xi, tend);

  double inner = 0.0;
  for (int k = 0; k < cfg.nz; ++k)
    for (int j = 1; j < cfg.ny - 1; ++j)
      for (int i = 0; i < cfg.nx; ++i)
        inner += tend.u()(i, j, k) *
                 (ws.vert.phi_geo(i, j, k) - ws.vert.phi_geo(i - 1, j, k));
  EXPECT_LT(inner, 0.0)
      << "the pressure-gradient force must push air from high to low";
}

TEST(SerialCore, JetRunsStably) {
  auto cfg = small_config();
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  core.initialize(xi, opt);
  const GlobalDiag before = local_diagnostics(core.op_context(), xi);
  core.run(xi, 10);
  const GlobalDiag after = local_diagnostics(core.op_context(), xi);
  EXPECT_TRUE(std::isfinite(after.total_energy()));
  EXPECT_GT(after.quad_energy, 0.0);
  // Smoothing and filtering dissipate; energy must not blow up.
  EXPECT_LT(after.total_energy(), 2.0 * before.total_energy() + 1.0);
  EXPECT_LT(after.max_abs_u, 10.0 * before.max_abs_u + 1.0);
}

TEST(SerialCore, PlanetaryWaveRunsStably) {
  auto cfg = small_config();
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  core.run(xi, 10);
  const GlobalDiag d = local_diagnostics(core.op_context(), xi);
  EXPECT_TRUE(std::isfinite(d.total_energy()));
  EXPECT_LT(d.max_abs_u, 500.0);
  EXPECT_LT(d.max_abs_psa, 5.0e4);
}

TEST(SerialCore, AdvectionConservesQuadraticInvariant) {
  // With 2nd-order (exactly skew-symmetric) x-advection, the weighted
  // inner product <F, L(F)> telescopes to zero in every direction (zero
  // flux at poles and sigma boundaries, periodic in x), so the advection
  // tendency must not change sum w * F^2 at leading order.
  auto cfg = small_config();
  cfg.params.x_order = 2;
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);

  auto tend = core.make_state();
  // Unfiltered advection tendency: evaluate the operator directly.
  core.fill_boundaries(xi);
  ops::DiagWorkspace ws(cfg.nx, cfg.ny, cfg.nz, halos_for_depth(1));
  const mesh::Box window = xi.interior();
  compute_diagnostics(core.op_context(), nullptr, nullptr, xi, window, ws,
                      false, cfg.z_allreduce, "t");
  ops::apply_advection(core.op_context(), xi, ws.local, ws.vert, tend,
                       window);

  const auto& ctx = core.op_context();
  double inner = 0.0, scale = 0.0;
  for (int k = 0; k < cfg.nz; ++k) {
    for (int j = 0; j < cfg.ny; ++j) {
      const double wu = ctx.sin_t(j) * ctx.dsig(k);
      const double wv = ctx.sin_tv(j) * ctx.dsig(k);
      for (int i = 0; i < cfg.nx; ++i) {
        inner += wu * xi.u()(i, j, k) * tend.u()(i, j, k);
        inner += wv * xi.v()(i, j, k) * tend.v()(i, j, k);
        inner += wu * xi.phi()(i, j, k) * tend.phi()(i, j, k);
        scale += wu * std::abs(xi.u()(i, j, k) * tend.u()(i, j, k));
        scale += wv * std::abs(xi.v()(i, j, k) * tend.v()(i, j, k));
        scale += wu * std::abs(xi.phi()(i, j, k) * tend.phi()(i, j, k));
      }
    }
  }
  ASSERT_GT(scale, 0.0) << "advection must actually do something";
  EXPECT_LT(std::abs(inner), 1e-10 * scale)
      << "skew-symmetric advection must conserve the quadratic invariant";
}

TEST(SerialCore, FourthOrderAdvectionNearlyConserves) {
  auto cfg = small_config();
  cfg.params.x_order = 4;
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kPlanetaryWave;
  core.initialize(xi, opt);
  core.fill_boundaries(xi);
  ops::DiagWorkspace ws(cfg.nx, cfg.ny, cfg.nz, halos_for_depth(1));
  auto tend = core.make_state();
  const mesh::Box window = xi.interior();
  compute_diagnostics(core.op_context(), nullptr, nullptr, xi, window, ws,
                      false, cfg.z_allreduce, "t");
  ops::apply_advection(core.op_context(), xi, ws.local, ws.vert, tend,
                       window);
  const auto& ctx = core.op_context();
  double inner = 0.0, scale = 0.0;
  for (int k = 0; k < cfg.nz; ++k)
    for (int j = 0; j < cfg.ny; ++j)
      for (int i = 0; i < cfg.nx; ++i) {
        const double wu = ctx.sin_t(j) * ctx.dsig(k);
        inner += wu * xi.phi()(i, j, k) * tend.phi()(i, j, k);
        scale += wu * std::abs(xi.phi()(i, j, k) * tend.phi()(i, j, k));
      }
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(std::abs(inner), 0.05 * scale)
      << "4th-order variant should conserve approximately";
}

TEST(SerialCore, DiagnosticsReportExtrema) {
  SerialCore core(small_config());
  auto xi = core.make_state();
  xi.fill(0.0);
  xi.u()(3, 4, 2) = -7.5;
  xi.psa()(1, 1) = 123.0;
  const GlobalDiag d = local_diagnostics(core.op_context(), xi);
  EXPECT_DOUBLE_EQ(d.max_abs_u, 7.5);
  EXPECT_DOUBLE_EQ(d.max_abs_psa, 123.0);
  EXPECT_GT(d.quad_energy, 0.0);
}

TEST(SerialCore, CflScalesWithDt) {
  SerialCore core(small_config());
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  core.initialize(xi, opt);
  const double c1 = cfl_estimate(core.op_context(), xi, 100.0);
  const double c2 = cfl_estimate(core.op_context(), xi, 200.0);
  EXPECT_GT(c1, 0.0);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-12);
}

TEST(SerialCore, ZonalMeansMatchInitialJet) {
  auto cfg = small_config();
  SerialCore core(cfg);
  auto xi = core.make_state();
  state::InitialOptions opt;
  opt.kind = state::InitialCondition::kZonalJet;
  opt.jet_speed = 25.0;
  core.initialize(xi, opt);
  auto u_mean = zonal_mean_u(core.op_context(), xi, 1);
  // Jet is symmetric about the equator and vanishes at the poles.
  EXPECT_NEAR(u_mean[0], u_mean[11], 1e-9);
  EXPECT_LT(u_mean[0], u_mean[3]);
  auto t_mean = zonal_mean_t(core.op_context(), xi, 1);
  // Warm equator, cold poles at this level (t anomaly -2 cos(2 theta)).
  EXPECT_GT(t_mean[5], t_mean[0]);
}

}  // namespace
}  // namespace ca::core
