// Shallow-water testbed: fixed points, conservation, wave radiation,
// geostrophic near-balance, and parallel equivalence — the library's
// substrates exercised by an independent model.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/collectives.hpp"
#include "comm/runtime.hpp"
#include "swe/shallow_water.hpp"

namespace ca::swe {
namespace {

SweConfig small() {
  SweConfig c;
  c.nx = 48;
  c.ny = 24;
  c.dt = 60.0;
  return c;
}

TEST(ShallowWater, RestStateIsExactFixedPoint) {
  ShallowWaterCore core(small());
  auto s = core.make_state();
  core.initialize(s, SweInitial::kRest);
  const double m0 = core.local_mass(s);
  core.run(s, 5);
  EXPECT_DOUBLE_EQ(core.max_abs_velocity(s), 0.0);
  EXPECT_DOUBLE_EQ(core.local_mass(s), m0);
  for (int j = 0; j < 24; ++j)
    for (int i = 0; i < 48; ++i)
      EXPECT_DOUBLE_EQ(s.h(i, j), 8000.0);
}

TEST(ShallowWater, MassIsConservedToRoundoff) {
  ShallowWaterCore core(small());
  auto s = core.make_state();
  core.initialize(s, SweInitial::kGravityWave);
  const double m0 = core.local_mass(s);
  core.run(s, 20);
  const double m1 = core.local_mass(s);
  EXPECT_NEAR(m1 / m0, 1.0, 1e-11)
      << "flux-form continuity must conserve mass";
}

TEST(ShallowWater, GravityWaveRadiatesWithoutBlowup) {
  ShallowWaterCore core(small());
  auto s = core.make_state();
  core.initialize(s, SweInitial::kGravityWave);
  // Initial bump is at the equator near lambda=0; no flow yet.
  EXPECT_DOUBLE_EQ(core.max_abs_velocity(s), 0.0);
  const double e0 = core.local_energy(s);
  core.run(s, 30);
  EXPECT_GT(core.max_abs_velocity(s), 0.01)
      << "the height bump must start flows";
  EXPECT_LT(core.max_abs_velocity(s), 100.0);
  const double e1 = core.local_energy(s);
  EXPECT_NEAR(e1 / e0, 1.0, 0.01)
      << "energy drift must stay small over 30 steps";
}

TEST(ShallowWater, GravityWaveSpeedIsPhysical) {
  // The bump's front should travel at roughly c = sqrt(gH) ~ 280 m/s:
  // after t seconds, the disturbance must have reached points ~c*t away
  // but not dramatically farther.
  SweConfig cfg = small();
  cfg.dt = 30.0;
  ShallowWaterCore core(cfg);
  auto s = core.make_state();
  core.initialize(s, SweInitial::kGravityWave);
  const int steps = 20;
  core.run(s, steps);
  const double t = steps * cfg.dt;
  const double c = std::sqrt(9.80616 * cfg.mean_depth);
  const double reach = c * t;  // meters
  // Check a point ~90 degrees away along the equator is still quiet if
  // the front cannot have reached it (quarter circumference ~ 1.0e7 m).
  const double quarter = 0.25 * 2.0 * 3.14159 * 6.371e6;
  ASSERT_LT(reach, quarter) << "test setup: front must not reach 90 deg";
  const int i_far = cfg.nx / 2;  // lambda ~ pi (antipodal-ish)
  const int j_eq = cfg.ny / 2;
  EXPECT_LT(std::abs(s.h(i_far, j_eq) - cfg.mean_depth), 0.5)
      << "the antipode must still be undisturbed";
  // Near the source the height must have changed.
  EXPECT_GT(std::abs(s.h(0, j_eq) - cfg.mean_depth), 1.0);
}

TEST(ShallowWater, GeostrophicJetStaysNearBalance) {
  SweConfig cfg = small();
  cfg.dt = 60.0;
  ShallowWaterCore core(cfg);
  auto s = core.make_state();
  core.initialize(s, SweInitial::kGeostrophicJet);
  const double u0 = core.max_abs_velocity(s);
  core.run(s, 40);
  // An exactly balanced state would be steady; our discrete balance is
  // approximate, so demand the flow stays the same order of magnitude and
  // the meridional flow stays a fraction of the jet.
  EXPECT_NEAR(core.max_abs_velocity(s), u0, 0.5 * u0);
  double vmax = 0.0;
  for (int j = 0; j < cfg.ny; ++j)
    for (int i = 0; i < cfg.nx; ++i)
      vmax = std::max(vmax, std::abs(s.v(i, j)));
  EXPECT_LT(vmax, 0.4 * u0)
      << "geostrophic adjustment must keep v << u";
}

TEST(ShallowWater, ParallelMatchesSerial) {
  const SweConfig cfg = small();
  ShallowWaterCore serial(cfg);
  auto ref = serial.make_state();
  serial.initialize(ref, SweInitial::kGravityWave);
  serial.run(ref, 10);

  for (int py : {2, 4}) {
    comm::Runtime::run(py, [&](comm::Context& ctx) {
      ShallowWaterCore core(cfg, ctx, py);
      auto s = core.make_state();
      core.initialize(s, SweInitial::kGravityWave);
      core.run(s, 10);
      double m = 0.0;
      for (int j = 0; j < core.decomp().lny(); ++j)
        for (int i = 0; i < cfg.nx; ++i) {
          const int gj = core.decomp().gj(j);
          m = std::max(m, std::abs(s.h(i, j) - ref.h(i, gj)));
          m = std::max(m, std::abs(s.u(i, j) - ref.u(i, gj)));
          m = std::max(m, std::abs(s.v(i, j) - ref.v(i, gj)));
        }
      EXPECT_LT(m, 1e-10) << "py = " << py;
    });
  }
}

TEST(ShallowWater, MassConservedInParallel) {
  const SweConfig cfg = small();
  comm::Runtime::run(3, [&](comm::Context& ctx) {
    ShallowWaterCore core(cfg, ctx, 3);
    auto s = core.make_state();
    core.initialize(s, SweInitial::kGravityWave);
    std::vector<double> in{core.local_mass(s)}, m0(1);
    comm::allreduce<double>(ctx, ctx.world(), in, m0, comm::ReduceOp::kSum);
    core.run(s, 15);
    std::vector<double> in1{core.local_mass(s)}, m1(1);
    comm::allreduce<double>(ctx, ctx.world(), in1, m1,
                            comm::ReduceOp::kSum);
    EXPECT_NEAR(m1[0] / m0[0], 1.0, 1e-11);
  });
}

TEST(ShallowWater, RossbyHaurwitzPropagatesEastwardAtKnownSpeed) {
  // Williamson test 6: the wavenumber-4 pattern rotates eastward at
  // angular speed c = [R(3+R)w - 2 Omega] / [(1+R)(2+R)] ~ 1.45e-6 rad/s
  // (about 25 degrees/day).  Track the phase of the m = 4 height harmonic
  // on a mid-latitude row.
  SweConfig cfg;
  cfg.nx = 64;
  cfg.ny = 32;
  cfg.dt = 90.0;
  ShallowWaterCore core(cfg);
  auto s = core.make_state();
  core.initialize(s, SweInitial::kRossbyHaurwitz);
  const int j_mid = 10;  // ~34 degrees colatitude
  const int m = 4;
  const double phase0 = core.zonal_phase(s, j_mid, m);
  const int steps = 300;
  core.run(s, steps);
  const double t = steps * cfg.dt;
  // Our zonal_phase uses exp(+i m lambda) projection with atan2(sn, cs);
  // eastward motion (pattern ~ cos(R(lambda - c t))) shifts the phase by
  // -m*c*t in this convention... measure and compare magnitudes and sign.
  double dphase = core.zonal_phase(s, j_mid, m) - phase0;
  while (dphase > util::kPi) dphase -= 2.0 * util::kPi;
  while (dphase < -util::kPi) dphase += 2.0 * util::kPi;
  constexpr double w = 7.848e-6;
  constexpr int R = 4;
  const double c_expect =
      (R * (3.0 + R) * w - 2.0 * util::kOmega) / ((1.0 + R) * (2.0 + R));
  const double expect = m * c_expect * t;  // pattern phase advance
  // Sign: cos(m lambda - m c t) = Re[exp(i m lambda) exp(-i m c t)]:
  // the projection's atan2 phase moves by +m c t.
  EXPECT_GT(std::abs(dphase), 0.3 * std::abs(expect))
      << "the wave must propagate (expected " << expect << ", got "
      << dphase << ")";
  EXPECT_LT(std::abs(dphase), 3.0 * std::abs(expect));
  EXPECT_GT(dphase * expect, 0.0) << "propagation direction must match";
  // The pattern must hold together: m=4 stays the dominant harmonic.
  double p4 = 0.0, p_others = 0.0;
  for (int mm = 1; mm <= 8; ++mm) {
    double cs = 0.0, sn = 0.0;
    for (int i = 0; i < cfg.nx; ++i) {
      cs += s.h(i, j_mid) * std::cos(2.0 * util::kPi * mm * i / cfg.nx);
      sn += s.h(i, j_mid) * std::sin(2.0 * util::kPi * mm * i / cfg.nx);
    }
    const double p = cs * cs + sn * sn;
    if (mm == 4) {
      p4 = p;
    } else {
      p_others = std::max(p_others, p);
    }
  }
  EXPECT_GT(p4, 3.0 * p_others)
      << "wavenumber 4 must remain the dominant zonal harmonic";
}

TEST(ShallowWater, WrongWorldSizeThrows) {
  EXPECT_THROW(
      comm::Runtime::run(
          2, [&](comm::Context& ctx) { ShallowWaterCore core(small(), ctx, 3); }),
      std::invalid_argument);
}

}  // namespace
}  // namespace ca::swe
