// Sub-range window arithmetic (ops/subrange.hpp) and the property the
// overlap path rests on: for every split stencil kernel, evaluating the
// interior box plus the boundary boxes composes bitwise to the one-shot
// full-window evaluation, for randomized shrink extents including the
// degenerate empty-interior and full-interior cases.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/serial_core.hpp"
#include "mesh/halo.hpp"
#include "ops/adaptation.hpp"
#include "ops/advection.hpp"
#include "ops/smoothing.hpp"
#include "ops/subrange.hpp"
#include "ops/tendency.hpp"

namespace ca::core {
namespace {

using mesh::Box;

long long volume_sum(const std::vector<Box>& boxes) {
  long long v = 0;
  for (const Box& b : boxes) v += b.volume();
  return v;
}

TEST(Subrange, SubtractBoxPartitionsRandomizedWindows) {
  std::mt19937 rng(2024);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    // Windows with arbitrary (possibly negative) origins, like the CA
    // core's extended windows; inner boxes anywhere, including outside.
    Box w;
    w.i0 = pick(-4, 4);
    w.i1 = w.i0 + pick(1, 8);
    w.j0 = pick(-4, 4);
    w.j1 = w.j0 + pick(1, 8);
    w.k0 = pick(-2, 2);
    w.k1 = w.k0 + pick(1, 6);
    Box inner;
    inner.i0 = pick(-6, 10);
    inner.i1 = inner.i0 + pick(0, 8);
    inner.j0 = pick(-6, 10);
    inner.j1 = inner.j0 + pick(0, 8);
    inner.k0 = pick(-4, 6);
    inner.k1 = inner.k0 + pick(0, 6);

    const Box clipped = mesh::intersect(inner, w);
    // volume() multiplies raw extents, which is meaningless for an empty
    // (possibly negative-extent) intersection box.
    const long long clipped_vol = clipped.empty() ? 0 : clipped.volume();
    const std::vector<Box> tiles = ops::subtract_box(w, inner);

    for (const Box& t : tiles) {
      EXPECT_FALSE(t.empty());
      EXPECT_EQ(mesh::intersect(t, w), t) << "tile escapes the window";
      // intersects() is only meaningful between nonempty boxes (an
      // inverted-extent empty box can satisfy the strict inequalities).
      if (!clipped.empty())
        EXPECT_FALSE(mesh::intersects(t, clipped))
            << "tile overlaps the inner box";
    }
    for (std::size_t a = 0; a < tiles.size(); ++a)
      for (std::size_t b = a + 1; b < tiles.size(); ++b)
        EXPECT_FALSE(mesh::intersects(tiles[a], tiles[b]))
            << "tiles " << a << " and " << b << " overlap";
    EXPECT_EQ(volume_sum(tiles) + clipped_vol, w.volume())
        << "tiles + inner must cover the window exactly";
  }
}

TEST(Subrange, SubtractBoxDegenerateCases) {
  const Box w{0, 8, 0, 6, 0, 4};
  // Empty inner: the whole window comes back as one box.
  const std::vector<Box> all = ops::subtract_box(w, Box{0, 0, 0, 0, 0, 0});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], w);
  // Inner == window: nothing remains.
  EXPECT_TRUE(ops::subtract_box(w, w).empty());
}

TEST(Subrange, ShrinkWindowCollapsesToCanonicalEmpty) {
  const Box w{0, 8, 0, 6, 0, 4};
  const Box inner = ops::shrink_window(w, 2, 1, 1);
  EXPECT_EQ(inner, (Box{2, 6, 1, 5, 1, 3}));
  EXPECT_EQ(ops::shrink_window(w, 0, 0, 0), w);
  // Over-shrinking yields the canonical empty box at the window origin,
  // which subtract_box then treats as "no interior".
  const Box empty = ops::shrink_window(w, 4, 1, 1);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(ops::subtract_box(w, empty).size(), 1u);
}

TEST(Subrange, GrowBoxIsShrinkInverseOnContainedBoxes) {
  const Box b{2, 6, 1, 5, 1, 3};
  EXPECT_EQ(ops::grow_box(b, 2, 1, 1), (Box{0, 8, 0, 6, 0, 4}));
  EXPECT_EQ(ops::grow_box(b, 0, 0, 0), b);
}

// --- kernel composition: interior + boundary == full window, bitwise ----

DycoreConfig test_config() {
  DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  c.dt_adapt = 30.0;
  c.dt_advect = 120.0;
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

/// A serial state with interesting (non-symmetric) content and every
/// physical halo filled, plus the core that owns its geometry.
struct Fixture {
  Fixture() : core(test_config()), xi(core.make_state()) {
    state::InitialOptions opt;
    opt.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, opt);
    // One step so psa/phi have evolved off the analytic profile.
    core.step(xi);
    core.fill_boundaries(xi);
  }
  SerialCore core;
  state::State xi;
};

/// Tiles for a given shrink: the interior (when nonempty) plus the
/// deterministic boundary boxes.
std::vector<Box> tiles_for(const Box& window, int sx, int sy, int sz) {
  const Box inner = ops::shrink_window(window, sx, sy, sz);
  std::vector<Box> tiles;
  if (!inner.empty()) tiles.push_back(inner);
  for (const Box& b : ops::subtract_box(window, inner)) tiles.push_back(b);
  return tiles;
}

TEST(SubrangeCompose, LocalDiagAndAdaptationMatchFullWindow) {
  Fixture fx;
  const ops::OpContext& ctx = fx.core.op_context();
  const Box window = fx.xi.interior();
  const auto h = halos_for_depth(1);

  ops::DiagWorkspace full_ws(window.i1, window.j1, window.k1, h);
  ops::compute_local_diag(ctx, fx.xi, window, full_ws);
  ops::compute_vert_diag_serial(ctx, fx.xi, window, full_ws);
  state::State full_tend = fx.core.make_state();
  ops::apply_adaptation(ctx, fx.xi, full_ws.local, full_ws.vert, full_tend,
                        window);

  std::mt19937 rng(7);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 6; ++trial) {
    // Trial 0: empty interior (over-shrunk); trial 1: full interior
    // (shrink 0); the rest randomized.
    const int sx = trial == 0 ? 99 : trial == 1 ? 0 : pick(0, 8);
    const int sy = trial == 0 ? 99 : trial == 1 ? 0 : pick(0, 6);
    const int sz = trial == 0 ? 99 : trial == 1 ? 0 : pick(0, 3);
    SCOPED_TRACE(::testing::Message()
                 << "shrink (" << sx << "," << sy << "," << sz << ")");

    ops::DiagWorkspace ws(window.i1, window.j1, window.k1, h);
    state::State tend = fx.core.make_state();
    const auto tiles = tiles_for(window, sx, sy, sz);
    for (const Box& b : tiles) ops::compute_local_diag(ctx, fx.xi, b, ws);
    ops::compute_vert_diag_serial(ctx, fx.xi, window, ws);
    for (const Box& b : tiles)
      ops::apply_adaptation(ctx, fx.xi, ws.local, ws.vert, tend, b);

    const double diff =
        state::State::max_abs_diff(full_tend, tend, window);
    EXPECT_EQ(diff, 0.0) << "tiled adaptation diverged from full window";
  }
}

TEST(SubrangeCompose, AdvectionMatchesFullWindow) {
  Fixture fx;
  const ops::OpContext& ctx = fx.core.op_context();
  const Box window = fx.xi.interior();
  const auto h = halos_for_depth(1);

  ops::DiagWorkspace full_ws(window.i1, window.j1, window.k1, h);
  ops::compute_local_diag(ctx, fx.xi, window, full_ws);
  ops::compute_vert_diag_serial(ctx, fx.xi, window, full_ws);
  state::State full_tend = fx.core.make_state();
  ops::apply_advection(ctx, fx.xi, full_ws.local, full_ws.vert, full_tend,
                       window);

  std::mt19937 rng(11);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 6; ++trial) {
    const int sx = trial == 0 ? 99 : pick(0, 8);
    const int sy = trial == 0 ? 99 : pick(0, 6);
    const int sz = trial == 0 ? 99 : pick(0, 3);
    SCOPED_TRACE(::testing::Message()
                 << "shrink (" << sx << "," << sy << "," << sz << ")");

    ops::DiagWorkspace ws(window.i1, window.j1, window.k1, h);
    ops::compute_vert_diag_serial(ctx, fx.xi, window, ws);
    state::State tend = fx.core.make_state();
    const auto tiles = tiles_for(window, sx, sy, sz);
    for (const Box& b : tiles) {
      ops::compute_local_diag(ctx, fx.xi, b, ws);
      ops::apply_advection(ctx, fx.xi, ws.local, ws.vert, tend, b);
    }
    const double diff =
        state::State::max_abs_diff(full_tend, tend, window);
    EXPECT_EQ(diff, 0.0) << "tiled advection diverged from full window";
  }
}

TEST(SubrangeCompose, SmoothingMatchesFullWindow) {
  Fixture fx;
  const ops::OpContext& ctx = fx.core.op_context();
  const Box window = fx.xi.interior();

  state::State full_out = fx.core.make_state();
  ops::apply_smoothing(ctx, fx.xi, full_out, window);

  std::mt19937 rng(13);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 6; ++trial) {
    const int sx = trial == 0 ? 99 : pick(0, 8);
    const int sy = trial == 0 ? 99 : pick(0, 6);
    const int sz = trial == 0 ? 99 : pick(0, 3);
    SCOPED_TRACE(::testing::Message()
                 << "shrink (" << sx << "," << sy << "," << sz << ")");
    state::State out = fx.core.make_state();
    for (const Box& b : tiles_for(window, sx, sy, sz))
      ops::apply_smoothing(ctx, fx.xi, out, b);
    const double diff = state::State::max_abs_diff(full_out, out, window);
    EXPECT_EQ(diff, 0.0) << "tiled smoothing diverged from full window";
  }
}

}  // namespace
}  // namespace ca::core
