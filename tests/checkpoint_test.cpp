// Checkpoint/restart: round-trip exactness, header validation, and a
// bitwise-identical restarted run across ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "core/ca_core.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "util/checkpoint.hpp"

namespace ca::util {
namespace {

std::string temp_prefix(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("ca_agcm_") + tag))
      .string();
}

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  return c;
}

TEST(Checkpoint, RoundTripIsBitwise) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) {
        a.u()(i, j, k) = 0.1 * i - 0.2 * j + k;
        a.v()(i, j, k) = std::sin(0.3 * i * j);
        a.phi()(i, j, k) = 1e-7 * i + 1e7 * k;
      }
  for (int j = 0; j < c.ny; ++j)
    for (int i = 0; i < c.nx; ++i) a.psa()(i, j) = 13.75 * i - j;

  const std::string path = temp_prefix("roundtrip") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 42, 12600.0);
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto hdr = read_checkpoint(path, mesh, d, b);
  EXPECT_EQ(hdr.step, 42);
  EXPECT_DOUBLE_EQ(hdr.time_seconds, 12600.0);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(a, b, a.interior()), 0.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongMesh) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(1.0);
  const std::string path = temp_prefix("wrongmesh") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 0, 0.0);

  mesh::LatLonMesh other(48, 16, 8);
  mesh::DomainDecomp od(other, {1, 1, 1}, {0, 0, 0});
  state::State b(48, 16, 8, core::halos_for_depth(1));
  EXPECT_THROW(read_checkpoint(path, other, od, b), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongDecomposition) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 2, 1}, {0, 0, 0});
  state::State a(c.nx, d.lny(), c.nz, core::halos_for_depth(1));
  a.fill(2.0);
  const std::string path = temp_prefix("wrongdecomp") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 0, 0.0);

  mesh::DomainDecomp other(mesh, {1, 2, 1}, {0, 1, 0});  // other block
  state::State b(c.nx, other.lny(), c.nz, core::halos_for_depth(1));
  EXPECT_THROW(read_checkpoint(path, mesh, other, b), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageAndTruncation) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));

  const std::string garbage = temp_prefix("garbage") + ".ckpt";
  {
    std::FILE* f = std::fopen(garbage.c_str(), "wb");
    std::fputs("not a checkpoint at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_checkpoint(garbage, mesh, d, b), std::runtime_error);
  std::remove(garbage.c_str());

  const std::string truncated = temp_prefix("trunc") + ".ckpt";
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(1.0);
  write_checkpoint(truncated, mesh, d, a, 0, 0.0);
  std::filesystem::resize_file(truncated,
                               std::filesystem::file_size(truncated) / 2);
  EXPECT_THROW(read_checkpoint(truncated, mesh, d, b), std::runtime_error);
  std::remove(truncated.c_str());

  EXPECT_THROW(read_checkpoint("/nonexistent/dir/x.ckpt", mesh, d, b),
               std::runtime_error);
}

TEST(Checkpoint, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926.
  const char digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(std::as_bytes(std::span<const char>(digits, 9))),
            0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Checkpoint, DetectsPayloadBitRot) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(3.0);
  const std::string path = temp_prefix("bitrot") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 5, 600.0);

  // Flip one payload bit well past the header.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(sizeof(CheckpointHeader)) + 129, SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x10, f);
    std::fclose(f);
  }
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  try {
    read_checkpoint(path, mesh, d, b);
    FAIL() << "bit rot must not read back silently";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
        << "unexpected diagnostic: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ReadsVersion1Files) {
  // A v1 file is the v1 header prefix (version word = 1, no CRC trailer)
  // followed by the same payload.  It must still read — and, lacking a
  // CRC, it cannot catch bit rot, which is exactly why v2 exists.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) a.u()(i, j, k) = i + 100.0 * j + k;
  const std::string v2 = temp_prefix("v2src") + ".ckpt";
  write_checkpoint(v2, mesh, d, a, 9, 1080.0);

  // Rewrite as v1: header prefix with the version patched, then payload.
  const std::string v1 = temp_prefix("v1") + ".ckpt";
  {
    std::FILE* in = std::fopen(v2.c_str(), "rb");
    std::FILE* out = std::fopen(v1.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    CheckpointHeader hdr;
    ASSERT_EQ(std::fread(&hdr, 1, sizeof(hdr), in), sizeof(hdr));
    hdr.version = 1;
    ASSERT_EQ(std::fwrite(&hdr, 1, kCheckpointHeaderV1Bytes, out),
              kCheckpointHeaderV1Bytes);
    for (int ch; (ch = std::fgetc(in)) != EOF;) std::fputc(ch, out);
    std::fclose(in);
    std::fclose(out);
  }
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto hdr = read_checkpoint(v1, mesh, d, b);
  EXPECT_EQ(hdr.version, 1u);
  EXPECT_EQ(hdr.step, 9);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(a, b, a.interior()), 0.0);

  // Same bit flip as the v2 test: a v1 file reads it back silently.
  {
    std::FILE* f = std::fopen(v1.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(kCheckpointHeaderV1Bytes) + 129,
               SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x10, f);
    std::fclose(f);
  }
  state::State rotted(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  EXPECT_NO_THROW(read_checkpoint(v1, mesh, d, rotted));
  EXPECT_GT(state::State::max_abs_diff(a, rotted, a.interior()), 0.0);
  std::remove(v2.c_str());
  std::remove(v1.c_str());
}

TEST(Checkpoint, ReadsVersion2Files) {
  // A v2 file ends its header at kCheckpointHeaderV2Bytes (no carry
  // trailer).  It must still read with its payload CRC enforced — the
  // exact-size trailer reads must not slurp v3 fields that are not there.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) a.v()(i, j, k) = 7.0 * i - j + 0.5 * k;
  const std::string v3 = temp_prefix("v3src") + ".ckpt";
  write_checkpoint(v3, mesh, d, a, 11, 1320.0);

  const std::string v2 = temp_prefix("v2") + ".ckpt";
  {
    std::FILE* in = std::fopen(v3.c_str(), "rb");
    std::FILE* out = std::fopen(v2.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    CheckpointHeader hdr;
    ASSERT_EQ(std::fread(&hdr, 1, sizeof(hdr), in), sizeof(hdr));
    hdr.version = 2;
    ASSERT_EQ(std::fwrite(&hdr, 1, kCheckpointHeaderV2Bytes, out),
              kCheckpointHeaderV2Bytes);
    for (int ch; (ch = std::fgetc(in)) != EOF;) std::fputc(ch, out);
    std::fclose(in);
    std::fclose(out);
  }
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  std::vector<std::byte> carry{std::byte{0xAA}};  // must come back empty
  const auto hdr = read_checkpoint(v2, mesh, d, b, &carry);
  EXPECT_EQ(hdr.version, 2u);
  EXPECT_EQ(hdr.step, 11);
  EXPECT_EQ(hdr.carry_bytes, 0u);
  EXPECT_TRUE(carry.empty());
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(a, b, a.interior()), 0.0);

  // The v2 payload CRC still catches bit rot.
  {
    std::FILE* f = std::fopen(v2.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(kCheckpointHeaderV2Bytes) + 129,
               SEEK_SET);
    const int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x10, f);
    std::fclose(f);
  }
  EXPECT_THROW(read_checkpoint(v2, mesh, d, b), std::runtime_error);
  std::remove(v3.c_str());
  std::remove(v2.c_str());
}

TEST(Checkpoint, TornWriteLeavesThePreviousCheckpointResumable) {
  // A writer killed mid-checkpoint leaves a partial <path>.tmp; the real
  // file — the job's only resumable state — must be untouched, and the
  // next successful write must replace both.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State s1(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  s1.fill(1.0);
  state::State s2(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  s2.fill(2.0);

  const std::string path = temp_prefix("torn") + ".ckpt";
  write_checkpoint(path, mesh, d, s1, 1, 120.0);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "a successful write must not leave its staging file behind";

  // Simulate the crash: a step-2 checkpoint torn halfway through, still
  // under the staging name because the rename never happened.
  const std::string full2 = temp_prefix("torn_full2") + ".ckpt";
  write_checkpoint(full2, mesh, d, s2, 2, 240.0);
  {
    std::FILE* in = std::fopen(full2.c_str(), "rb");
    std::FILE* out = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    const auto half =
        static_cast<long>(std::filesystem::file_size(full2) / 2);
    for (long n = 0; n < half; ++n) std::fputc(std::fgetc(in), out);
    std::fclose(in);
    std::fclose(out);
  }

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto hdr = read_checkpoint(path, mesh, d, b);
  EXPECT_EQ(hdr.step, 1);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(s1, b, s1.interior()), 0.0)
      << "the torn staging file corrupted the committed checkpoint";

  // The next checkpoint replaces the torn staging file and commits.
  write_checkpoint(path, mesh, d, s2, 2, 240.0);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto hdr2 = read_checkpoint(path, mesh, d, b);
  EXPECT_EQ(hdr2.step, 2);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(s2, b, s2.interior()), 0.0);
  std::remove(path.c_str());
  std::remove(full2.c_str());
}

TEST(Checkpoint, FailedWriteLeavesThePreviousCheckpointIntact) {
  // When the staging file cannot even be opened (here: the .tmp name is
  // occupied by a directory), write_checkpoint must throw and the
  // committed checkpoint must stay readable.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State s1(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  s1.fill(4.0);

  const std::string path = temp_prefix("failwrite") + ".ckpt";
  write_checkpoint(path, mesh, d, s1, 3, 360.0);
  std::filesystem::remove_all(path + ".tmp");
  ASSERT_TRUE(std::filesystem::create_directory(path + ".tmp"));

  state::State s2(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  s2.fill(5.0);
  EXPECT_THROW(write_checkpoint(path, mesh, d, s2, 4, 480.0),
               std::runtime_error);

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto hdr = read_checkpoint(path, mesh, d, b);
  EXPECT_EQ(hdr.step, 3);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(s1, b, s1.interior()), 0.0);
  std::filesystem::remove_all(path + ".tmp");
  std::remove(path.c_str());
}

TEST(Checkpoint, CarryBlockRoundTripsAndIsCrcGuarded) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(6.0);

  const double field[4] = {1.5, -2.25, 3.0e-7, 4.0e7};
  CarryWriter w;
  w.put_u64(0xFEEDu);
  w.put_i64(-17);
  w.put_doubles(std::span<const double>(field, 4));
  const std::vector<std::byte> blob = w.take();

  const std::string path = temp_prefix("carry") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 7, 840.0, blob);

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  std::vector<std::byte> got;
  const auto hdr = read_checkpoint(path, mesh, d, b, &got);
  EXPECT_EQ(hdr.version, 3u);
  ASSERT_EQ(hdr.carry_bytes, blob.size());
  ASSERT_EQ(got.size(), blob.size());

  CarryReader r(got);
  EXPECT_EQ(r.get_u64(), 0xFEEDu);
  EXPECT_EQ(r.get_i64(), -17);
  double back[4] = {};
  r.get_doubles(std::span<double>(back, 4));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], field[i]);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());

  // A reader that does not ask for the carry skips it silently (the
  // payload stays valid), preserving carry-free consumers.
  EXPECT_NO_THROW(read_checkpoint(path, mesh, d, b));

  // Flip a bit in the carry region (the last byte of the file): the
  // payload CRC still passes, the carry CRC must not.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x01, f);
    std::fclose(f);
  }
  EXPECT_NO_THROW(read_checkpoint(path, mesh, d, b))
      << "carry-free readers must not pay for carry rot";
  try {
    read_checkpoint(path, mesh, d, b, &got);
    FAIL() << "carry bit rot must not read back silently";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("carry CRC"), std::string::npos)
        << "unexpected diagnostic: " << e.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, CarryReaderFailsLoudlyOnFormatMismatch) {
  const double field[3] = {1.0, 2.0, 3.0};
  CarryWriter w;
  w.put_doubles(std::span<const double>(field, 3));
  const std::vector<std::byte> blob = w.take();

  {
    // Stored count 3, core expects 5: a differently-configured core.
    CarryReader r(blob);
    double out[5] = {};
    EXPECT_THROW(r.get_doubles(std::span<double>(out, 5)),
                 std::runtime_error);
  }
  {
    // Truncated block: the length prefix survives but the doubles don't.
    CarryReader r(std::span<const std::byte>(blob.data(), blob.size() - 8));
    double out[3] = {};
    EXPECT_THROW(r.get_doubles(std::span<double>(out, 3)),
                 std::runtime_error);
  }
  {
    // Unread trailing bytes: the core consumed less than was stored.
    CarryReader r(blob);
    EXPECT_EQ(r.get_u64(), 3u);  // just the length prefix
    EXPECT_THROW(r.expect_end(), std::runtime_error);
  }
}

// --- durability counters ---------------------------------------------------

TEST(Checkpoint, WritesAreFsyncedAndCounted) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(1.0);
  const std::string path = temp_prefix("fsync") + ".ckpt";

  reset_checkpoint_io();
  write_checkpoint(path, mesh, d, a, 1, 120.0);
  const auto w = checkpoint_io();
  EXPECT_EQ(w.files_written, 1u);
  EXPECT_EQ(w.bytes_written, std::filesystem::file_size(path));
  EXPECT_GE(w.fsyncs, 1u)
      << "the checkpoint was renamed over the previous one without an "
         "fsync: a power loss could commit a torn or empty file";
  EXPECT_EQ(w.files_read, 0u);

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  read_checkpoint(path, mesh, d, b);
  const auto r = checkpoint_io();
  EXPECT_EQ(r.files_read, 1u);
  EXPECT_EQ(r.bytes_read, w.bytes_written);
  reset_checkpoint_io();
  std::remove(path.c_str());
}

// --- v4 delta chains -------------------------------------------------------

/// Removes a chain's base and every delta file.
void remove_chain(const std::string& path) {
  std::remove(path.c_str());
  for (int s = 1; std::remove(delta_path(path, s).c_str()) == 0; ++s) {
  }
}

/// A deterministic full-field pattern, salted so successive steps differ.
state::State patterned_state(const core::DycoreConfig& c, double salt) {
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) {
        a.u()(i, j, k) = 0.1 * i - 0.2 * j + k + salt;
        a.v()(i, j, k) = std::sin(0.3 * i * j) - salt;
        a.phi()(i, j, k) = 1e-7 * i + 1e7 * k + 3.0 * salt;
      }
  for (int j = 0; j < c.ny; ++j)
    for (int i = 0; i < c.nx; ++i) a.psa()(i, j) = 13.75 * i - j + salt;
  return a;
}

TEST(CheckpointDelta, ChainRoundTripsBitwiseAndRewinds) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chain") + ".ckpt";
  remove_chain(path);

  // Steps 1..4: a sparse edit per cadence, so deltas stay small.
  CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
  state::State s = patterned_state(c, 0.0);
  std::vector<state::State> snaps;
  for (int step = 1; step <= 4; ++step) {
    s.u()(step, step % c.ny, 0) += 1.0;  // one cell per cadence
    session.write(mesh, d, s, step, 120.0 * step);
    snaps.emplace_back(c.nx, c.ny, c.nz, core::halos_for_depth(1));
    snaps.back().assign(s, s.interior());
  }
  EXPECT_EQ(session.stats().cadences, 4u);
  EXPECT_EQ(session.stats().full_writes, 1u);
  EXPECT_EQ(session.stats().delta_writes, 3u);
  EXPECT_LT(session.stats().bytes_written,
            session.stats().full_equivalent_bytes)
      << "sparse-edit deltas did not save any bytes";
  ASSERT_TRUE(std::filesystem::exists(delta_path(path, 1)));
  ASSERT_TRUE(std::filesystem::exists(delta_path(path, 3)));

  // Tip reconstruction is bitwise.
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto tip = read_checkpoint_chain(path, mesh, d, b);
  EXPECT_EQ(tip.header.step, 4);
  EXPECT_EQ(tip.deltas_applied, 3);
  EXPECT_FALSE(tip.truncated_by_corruption);
  EXPECT_DOUBLE_EQ(
      state::State::max_abs_diff(snaps[3], b, snaps[3].interior()), 0.0);

  // Rewind to every interior element, bitwise each time.
  for (int step = 1; step <= 3; ++step) {
    state::State r(c.nx, c.ny, c.nz, core::halos_for_depth(1));
    const auto got =
        read_checkpoint_chain(path, mesh, d, r, nullptr, {.max_step = step});
    EXPECT_EQ(got.header.step, step);
    EXPECT_DOUBLE_EQ(state::State::max_abs_diff(
                         snaps[static_cast<std::size_t>(step - 1)], r,
                         r.interior()),
                     0.0)
        << "rewind to step " << step << " was not bitwise";
  }
  // A step the chain never wrote must fail loudly, not approximate.
  state::State r(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  EXPECT_THROW(
      read_checkpoint_chain(path, mesh, d, r, nullptr, {.max_step = 9}),
      std::runtime_error);
  remove_chain(path);
}

TEST(Checkpoint, HealthVerdictRoundTripsInTheHeader) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("health") + ".ckpt";

  state::State a = patterned_state(c, 1.0);
  write_checkpoint(path, mesh, d, a, 7, 840.0, {}, /*health=*/1);
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  EXPECT_EQ(read_checkpoint(path, mesh, d, b).health, 1u);

  // The default is "unverified" — files written by a sentinel-off run
  // (and pre-sentinel archives, which reused this spare field as zero)
  // must read back as 0.
  write_checkpoint(path, mesh, d, a, 7, 840.0);
  EXPECT_EQ(read_checkpoint(path, mesh, d, b).health, 0u);
  std::remove(path.c_str());
}

TEST(CheckpointDelta, PoisonedTipRewindsToTheLastHealthyStep) {
  // The runner's rollback path in one test: a chain whose tip holds a
  // poisoned state (written by a sentinel-off run, so nothing gated it)
  // is rewound via max_step to the newest healthy cadence, bitwise.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("poisoned_tip") + ".ckpt";
  remove_chain(path);

  CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
  state::State s = patterned_state(c, 0.0);
  state::State healthy(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int step = 1; step <= 3; ++step) {
    s.u()(step, step, 0) += 1.0;
    session.write(mesh, d, s, step, 120.0 * step, {}, /*health=*/1);
    if (step == 3) healthy.assign(s, s.interior());
  }
  // Step 4 blows up and the (hypothetical sentinel-off) writer persists
  // it: NaN in the prognostic state, flagged unverified.
  s.u()(4, 4, 0) = std::numeric_limits<double>::quiet_NaN();
  session.write(mesh, d, s, 4, 480.0, {}, /*health=*/0);

  state::State tip(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto got = read_checkpoint_chain(path, mesh, d, tip);
  EXPECT_EQ(got.header.step, 4);
  EXPECT_EQ(got.header.health, 0u);
  EXPECT_TRUE(std::isnan(tip.u()(4, 4, 0)));

  // The rewind a numeric recovery performs: one cadence back, bitwise,
  // and the rewound header carries the healthy verdict.
  state::State r(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto rew =
      read_checkpoint_chain(path, mesh, d, r, nullptr, {.max_step = 3});
  EXPECT_EQ(rew.header.step, 3);
  EXPECT_EQ(rew.header.health, 1u);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(healthy, r, r.interior()), 0.0)
      << "rewind past the poisoned tip was not bitwise";
  remove_chain(path);
}

TEST(CheckpointDelta, ChainCapRewritesAFreshBaseAndDropsStaleDeltas) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chaincap") + ".ckpt";
  remove_chain(path);

  CheckpointSession session(path, {.chain_cap = 2, .block_bytes = 4096});
  state::State s = patterned_state(c, 0.0);
  for (int step = 1; step <= 6; ++step) {
    s.u()(0, 0, 0) += 1.0;
    session.write(mesh, d, s, step, 120.0 * step);
  }
  // Pattern: full, d1, d2, full, d1, d2.
  EXPECT_EQ(session.stats().full_writes, 2u);
  EXPECT_EQ(session.stats().delta_writes, 4u);
  EXPECT_FALSE(std::filesystem::exists(delta_path(path, 3)))
      << "the chain-cap base rewrite left a stale third delta behind";

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto tip = read_checkpoint_chain(path, mesh, d, b);
  EXPECT_EQ(tip.header.step, 6);
  EXPECT_EQ(tip.deltas_applied, 2);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(s, b, s.interior()), 0.0);
  remove_chain(path);
}

TEST(CheckpointDelta, CorruptDeltaFallsBackToTheLastIntactElement) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chainrot") + ".ckpt";
  remove_chain(path);

  CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
  state::State s = patterned_state(c, 0.0);
  state::State at2(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int step = 1; step <= 3; ++step) {
    s.u()(1, 1, 1) += 1.0;
    session.write(mesh, d, s, step, 120.0 * step);
    if (step == 2) at2.assign(s, s.interior());
  }

  // Bit rot in the LAST byte of .d2's payload (past its header).
  {
    std::FILE* f = std::fopen(delta_path(path, 2).c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int byte = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);
  }
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto got = read_checkpoint_chain(path, mesh, d, b);
  EXPECT_EQ(got.header.step, 2) << "the corrupt delta was not rejected";
  EXPECT_EQ(got.deltas_applied, 1);
  EXPECT_TRUE(got.truncated_by_corruption);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(at2, b, at2.interior()), 0.0)
      << "fallback state is not the last intact element";
  remove_chain(path);
}

TEST(CheckpointDelta, TornDeltaFallsBackToTheLastIntactElement) {
  // A writer killed mid-delta leaves <path>.d2.tmp, never .d2 — but a
  // power loss can also tear a published file on non-journaled setups;
  // both must degrade to the previous element, never garbage.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chaintorn") + ".ckpt";
  remove_chain(path);

  CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
  state::State s = patterned_state(c, 0.0);
  state::State at1(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int step = 1; step <= 2; ++step) {
    s.v()(2, 3, 4) -= 0.5;
    session.write(mesh, d, s, step, 120.0 * step);
    if (step == 1) at1.assign(s, s.interior());
  }
  std::filesystem::resize_file(
      delta_path(path, 1),
      std::filesystem::file_size(delta_path(path, 1)) / 2);

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto got = read_checkpoint_chain(path, mesh, d, b);
  EXPECT_EQ(got.header.step, 1) << "the torn delta was not rejected";
  EXPECT_EQ(got.deltas_applied, 0);
  EXPECT_TRUE(got.truncated_by_corruption);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(at1, b, at1.interior()), 0.0);
  remove_chain(path);
}

TEST(CheckpointDelta, StaleDeltasFromAnOldBaseAreIgnored) {
  // Crash between a fresh session's base write and the old chain's
  // cleanup: deltas of the OLD base survive on disk next to the new
  // base.  Their base_id no longer matches, so the chain read must stop
  // at the new base instead of applying old-trajectory blocks.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chainstale") + ".ckpt";
  remove_chain(path);

  {
    CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
    state::State s = patterned_state(c, 0.0);
    session.write(mesh, d, s, 1, 120.0);
    s.u()(0, 0, 0) += 1.0;
    session.write(mesh, d, s, 2, 240.0);  // -> .d1
  }
  // Preserve the old .d1 from the new session's full-write cleanup, then
  // put it back: this is the on-disk picture of a cleanup that never ran.
  const std::string stale = delta_path(path, 1);
  const std::string keep = stale + ".keep";
  ASSERT_EQ(std::rename(stale.c_str(), keep.c_str()), 0);
  state::State fresh = patterned_state(c, 99.0);
  {
    CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
    session.write(mesh, d, fresh, 7, 840.0);  // fresh full base
  }
  ASSERT_EQ(std::rename(keep.c_str(), stale.c_str()), 0);

  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto got = read_checkpoint_chain(path, mesh, d, b);
  EXPECT_EQ(got.header.step, 7);
  EXPECT_EQ(got.deltas_applied, 0)
      << "a delta of the OLD base was applied to the new one";
  EXPECT_FALSE(got.truncated_by_corruption)
      << "a stale chain is not corruption; it is simply over";
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(fresh, b, fresh.interior()),
                   0.0);
  remove_chain(path);
}

TEST(CheckpointDelta, AllDirtyCadenceDegeneratesToAFullBase) {
  // When every block changed, a delta would cost MORE than the full file
  // (indices + all blocks); the session must write a full base instead,
  // so delta mode is never worse than full mode.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chaindense") + ".ckpt";
  remove_chain(path);

  CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
  session.write(mesh, d, patterned_state(c, 0.0), 1, 120.0);
  session.write(mesh, d, patterned_state(c, 1.0), 2, 240.0);
  EXPECT_EQ(session.stats().full_writes, 2u);
  EXPECT_EQ(session.stats().delta_writes, 0u);
  EXPECT_FALSE(std::filesystem::exists(delta_path(path, 1)));

  // And the full file stays bitwise identical to write_checkpoint's.
  const std::string ref = temp_prefix("chaindense_ref") + ".ckpt";
  write_checkpoint(ref, mesh, d, patterned_state(c, 1.0), 2, 240.0);
  std::FILE* fa = std::fopen(path.c_str(), "rb");
  std::FILE* fb = std::fopen(ref.c_str(), "rb");
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);
  for (int ca_ = 0, cb = 0; ca_ != EOF || cb != EOF;) {
    ca_ = std::fgetc(fa);
    cb = std::fgetc(fb);
    ASSERT_EQ(ca_, cb) << "session full base diverged from "
                          "write_checkpoint's bytes";
  }
  std::fclose(fa);
  std::fclose(fb);
  std::remove(ref.c_str());
  remove_chain(path);
}

TEST(CheckpointDelta, FreshBaseSweepsDeltasPastAHole) {
  // The stale-delta sweep used to walk `.d1, .d2, ...` and stop at the
  // first missing file.  A hole in the sequence (a delta removed by an
  // operator, lost to a disk repair, or swept by a racing cleanup) then
  // left every later delta behind forever — stale files that are never
  // read (base_id mismatch) but grow the directory without bound.
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  const std::string path = temp_prefix("chainhole") + ".ckpt";
  remove_chain(path);

  state::State s = patterned_state(c, 0.0);
  {
    CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
    for (int step = 1; step <= 5; ++step) {
      s.u()(0, 0, 0) += 1.0;
      session.write(mesh, d, s, step, 120.0 * step);  // base + d1..d4
    }
  }
  ASSERT_TRUE(std::filesystem::exists(delta_path(path, 4)));
  std::remove(delta_path(path, 2).c_str());  // pre-punched hole

  // A fresh session's first write is a full base; its cleanup must sweep
  // the whole old chain, including the deltas past the hole.
  {
    CheckpointSession session(path, {.chain_cap = 8, .block_bytes = 4096});
    session.write(mesh, d, s, 9, 1080.0);
  }
  for (int seq : {1, 3, 4})
    EXPECT_FALSE(std::filesystem::exists(delta_path(path, seq)))
        << "stale delta .d" << seq << " survived past the hole";
  remove_chain(path);
}

// --- crash-atomic reshard --------------------------------------------------

/// Writes a {1,2,1} checkpoint set whose field values are functions of
/// GLOBAL coordinates, so any resharding preserves them exactly.
void write_split_set(const std::string& prefix,
                     const mesh::LatLonMesh& mesh, std::int64_t step,
                     double salt) {
  for (int r = 0; r < 2; ++r) {
    mesh::DomainDecomp d(mesh, {1, 2, 1}, {0, r, 0});
    state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i) {
          const int gj = d.gj(j);
          s.u()(i, j, k) = i + 100.0 * gj + k + salt;
          s.v()(i, j, k) = -2.0 * i + gj - k;
          s.phi()(i, j, k) = 0.5 * i * gj + salt;
        }
    for (int j = 0; j < d.lny(); ++j)
      for (int i = 0; i < d.lnx(); ++i)
        s.psa()(i, j) = 7.0 * i - d.gj(j) + salt;
    write_checkpoint(checkpoint_path(prefix, r), mesh, d, s, step,
                     120.0 * static_cast<double>(step));
  }
}

/// Reads the post-reshard {1,1,1} file and checks it against the global
/// pattern written by write_split_set.
void expect_merged_set(const std::string& prefix,
                       const core::DycoreConfig& c,
                       const mesh::LatLonMesh& mesh, std::int64_t step,
                       double salt) {
  mesh::DomainDecomp full(mesh, {1, 1, 1}, {0, 0, 0});
  state::State got(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto hdr =
      read_checkpoint(checkpoint_path(prefix, 0), mesh, full, got);
  EXPECT_EQ(hdr.step, step);
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i)
        ASSERT_EQ(got.u()(i, j, k), i + 100.0 * j + k + salt)
            << "merged state wrong at " << i << "," << j << "," << k;
}

void remove_set(const std::string& prefix) {
  for (int r = 0; r < 4; ++r) {
    remove_chain(checkpoint_path(prefix, r));
    std::remove((checkpoint_path(prefix, r) + ".new").c_str());
  }
  std::remove((prefix + ".reshard").c_str());
}

TEST(CheckpointReshard, CrashBeforeCommitLeavesTheOldSetResumable) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const std::string prefix = temp_prefix("reshard_precommit");
  remove_set(prefix);
  write_split_set(prefix, mesh, 5, 1.0);

  // Crash while staging the second rank's file: before the commit marker.
  set_checkpoint_test_hook([](const std::string& event) {
    if (event == "staged:0")
      throw std::runtime_error("injected crash before commit");
  });
  EXPECT_THROW(reshard_checkpoints(prefix, mesh, {1, 2, 1}, {1, 1, 1}),
               std::runtime_error);
  set_checkpoint_test_hook(nullptr);
  EXPECT_FALSE(std::filesystem::exists(prefix + ".reshard"))
      << "a pre-commit crash must not leave a commit marker";

  // Recovery finds no marker: the OLD set is still the truth (and the
  // stage leftovers are swept).
  EXPECT_FALSE(recover_resharded_checkpoints(prefix));
  EXPECT_FALSE(
      std::filesystem::exists(checkpoint_path(prefix, 0) + ".new"));
  for (int r = 0; r < 2; ++r) {
    mesh::DomainDecomp d(mesh, {1, 2, 1}, {0, r, 0});
    state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
    const auto hdr =
        read_checkpoint(checkpoint_path(prefix, r), mesh, d, s);
    EXPECT_EQ(hdr.step, 5) << "old rank " << r << " file was damaged";
  }
  // The retry completes end-to-end (reshard self-heals via recover).
  reshard_checkpoints(prefix, mesh, {1, 2, 1}, {1, 1, 1});
  expect_merged_set(prefix, c, mesh, 5, 1.0);
  remove_set(prefix);
}

TEST(CheckpointReshard, CrashAfterCommitRollsForward) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const std::string prefix = temp_prefix("reshard_committed");
  remove_set(prefix);
  write_split_set(prefix, mesh, 6, 2.0);

  // Crash right after the commit marker landed, before any publish.
  set_checkpoint_test_hook([](const std::string& event) {
    if (event == "committed")
      throw std::runtime_error("injected crash after commit");
  });
  EXPECT_THROW(reshard_checkpoints(prefix, mesh, {1, 2, 1}, {1, 1, 1}),
               std::runtime_error);
  set_checkpoint_test_hook(nullptr);
  ASSERT_TRUE(std::filesystem::exists(prefix + ".reshard"));

  EXPECT_TRUE(recover_resharded_checkpoints(prefix))
      << "a committed reshard must be rolled forward";
  EXPECT_FALSE(std::filesystem::exists(prefix + ".reshard"));
  EXPECT_FALSE(std::filesystem::exists(checkpoint_path(prefix, 1)))
      << "the stale old-rank file survived the publish";
  expect_merged_set(prefix, c, mesh, 6, 2.0);
  EXPECT_FALSE(recover_resharded_checkpoints(prefix)) << "not idempotent";
  remove_set(prefix);
}

TEST(CheckpointReshard, CrashMidPublishRollsForwardIdempotently) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const std::string prefix = temp_prefix("reshard_midpublish");
  remove_set(prefix);
  write_split_set(prefix, mesh, 7, 3.0);

  // {1,2,1} -> {2,1,1}: two staged files, crash between their renames.
  int published = 0;
  set_checkpoint_test_hook([&published](const std::string& event) {
    if (event.rfind("published:", 0) == 0 && ++published == 2)
      throw std::runtime_error("injected crash mid-publish");
  });
  EXPECT_THROW(reshard_checkpoints(prefix, mesh, {1, 2, 1}, {2, 1, 1}),
               std::runtime_error);
  set_checkpoint_test_hook(nullptr);
  ASSERT_TRUE(std::filesystem::exists(prefix + ".reshard"));

  EXPECT_TRUE(recover_resharded_checkpoints(prefix));
  EXPECT_FALSE(std::filesystem::exists(prefix + ".reshard"));
  for (int r = 0; r < 2; ++r) {
    mesh::DomainDecomp d(mesh, {2, 1, 1}, {r, 0, 0});
    state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
    const auto hdr =
        read_checkpoint(checkpoint_path(prefix, r), mesh, d, s);
    EXPECT_EQ(hdr.step, 7);
    for (int k = 0; k < d.lnz(); ++k)
      for (int j = 0; j < d.lny(); ++j)
        for (int i = 0; i < d.lnx(); ++i)
          ASSERT_EQ(s.u()(i, j, k), d.gi(i) + 100.0 * d.gj(j) + k + 3.0);
  }
  remove_set(prefix);
}

TEST(Checkpoint, RestartedDistributedRunIsIdentical) {
  // run 4 steps == run 2, checkpoint, restore into fresh cores, run 2.
  const auto c = cfg();
  const std::string prefix = temp_prefix("restart");
  state::State straight, restarted;

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, ic);
    core.run(xi, 4);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) straight = std::move(g);
  });

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, ic);
    core.run(xi, 2);
    write_checkpoint(checkpoint_path(prefix, ctx.world_rank()),
                     mesh::LatLonMesh(c.nx, c.ny, c.nz), core.decomp(), xi,
                     2, 2 * c.dt_advect);
  });
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
    const auto hdr = read_checkpoint(
        checkpoint_path(prefix, ctx.world_rank()), mesh, core.decomp(), xi);
    EXPECT_EQ(hdr.step, 2);
    core.refresh_halos(xi, "restart");
    core.run(xi, 2);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) restarted = std::move(g);
    std::remove(checkpoint_path(prefix, ctx.world_rank()).c_str());
  });

  EXPECT_DOUBLE_EQ(
      state::State::max_abs_diff(straight, restarted, straight.interior()),
      0.0)
      << "a restart must be bitwise transparent";
}

// --- CA carry reshard ------------------------------------------------------
//
// The CA core's cross-step carry (deferred smoothing rows, stale C
// anchors, step counter) is written in the reshardable layout, so a
// degraded-pool reshard can redistribute it across a new Y-Z
// decomposition.  In exact mode (fresh_c_on_block_face off,
// kLinearOrdered z sums) the CA trajectory is bitwise invariant to the
// y split (S2 recomputes seam rows in the monolithic operator's exact
// addition order), so any py-change reshard must be bitwise transparent
// against an uninterrupted reference at the same pz.  Changing pz
// regroups the z-collective partial sums (each z rank folds its own
// levels before the rank-ordered combine), so pz-crossing reshards are
// exact in the carried rows but the resumed trajectory re-associates
// those sums — round-off class, same bound the core equivalence suite
// uses.

core::DycoreConfig ca_cfg() {
  auto c = cfg();  // nx 24, ny 16, nz 8, M 2 -> min CA block: 7 in y, 3 in z
  c.z_allreduce = comm::AllreduceAlgorithm::kLinearOrdered;
  return c;
}

core::CAOptions exact_ca() {
  core::CAOptions o;
  o.fresh_c_on_block_face = false;
  o.approximate_iteration = false;
  return o;
}

/// Runs `upto` CA steps on `dims` and checkpoints state + carry per rank
/// (no finalize: the deferred smoothing stays pending, as at a real
/// preemption boundary).
void ca_run_and_checkpoint(const core::DycoreConfig& c,
                           std::array<int, 3> dims,
                           const std::string& prefix, int upto) {
  comm::Runtime::run(dims[0] * dims[1] * dims[2], [&](comm::Context& ctx) {
    core::CACore core(c, ctx, dims, exact_ca());
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    for (int i = 0; i < upto; ++i) core.step(xi);
    CarryWriter w;
    core.save_carry(w);
    write_checkpoint(checkpoint_path(prefix, ctx.world_rank()),
                     mesh::LatLonMesh(c.nx, c.ny, c.nz), core.decomp(), xi,
                     upto, upto * c.dt_advect, w.bytes());
  });
}

/// Resumes the checkpoint set under `dims`, runs to `total`, finalizes,
/// and returns the gathered global state.
state::State ca_resume_and_finish(const core::DycoreConfig& c,
                                  std::array<int, 3> dims,
                                  const std::string& prefix, int total) {
  state::State out;
  comm::Runtime::run(dims[0] * dims[1] * dims[2], [&](comm::Context& ctx) {
    core::CACore core(c, ctx, dims, exact_ca());
    auto xi = core.make_state();
    std::vector<std::byte> carry;
    const auto hdr = read_checkpoint(
        checkpoint_path(prefix, ctx.world_rank()),
        mesh::LatLonMesh(c.nx, c.ny, c.nz), core.decomp(), xi, &carry);
    ASSERT_FALSE(carry.empty()) << "resharded set lost the carry block";
    CarryReader r(carry);
    core.restore_carry(r);
    core.refresh_halos(xi, "restart");
    for (int i = static_cast<int>(hdr.step); i < total; ++i) core.step(xi);
    core.finalize(xi);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) out = std::move(g);
  });
  return out;
}

/// Uninterrupted reference trajectory at `dims`.  Exact mode is bitwise
/// invariant to the y split, so the reference for a reshard between two
/// shapes only has to match their pz.
state::State ca_reference(const core::DycoreConfig& c, int total,
                          std::array<int, 3> dims = {1, 1, 1}) {
  state::State out;
  comm::Runtime::run(dims[0] * dims[1] * dims[2], [&](comm::Context& ctx) {
    core::CACore core(c, ctx, dims, exact_ca());
    auto xi = core.make_state();
    core.initialize(xi, {.kind = state::InitialCondition::kPlanetaryWave});
    for (int i = 0; i < total; ++i) core.step(xi);
    core.finalize(xi);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(), xi);
    if (ctx.world_rank() == 0) out = std::move(g);
  });
  return out;
}

TEST(CheckpointReshard, CACarryReshardMatrixIsBitwise) {
  // py-changing reshards at every checkpoint step, shrink and re-grow,
  // each bit-for-bit against an uninterrupted reference run at the
  // matching pz (the bitwise equivalence class of the exact-mode CA
  // trajectory).
  const auto c = ca_cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  constexpr int kSteps = 4;

  struct Move {
    std::array<int, 3> from, to, ref;
    const char* what;
  };
  const Move moves[] = {
      {{1, 2, 1}, {1, 1, 1}, {1, 1, 1}, "shrink 2 -> 1"},
      {{1, 1, 1}, {1, 2, 1}, {1, 1, 1}, "re-grow 1 -> 2"},
      {{1, 2, 2}, {1, 1, 2}, {1, 1, 2}, "shrink 4 -> 2 under a z split"},
      {{1, 1, 2}, {1, 2, 2}, {1, 1, 2}, "re-grow 2 -> 4 under a z split"},
  };
  for (const Move& m : moves) {
    const state::State ref = ca_reference(c, kSteps, m.ref);
    ASSERT_GT(ref.interior().volume(), 0);
    for (int s = 1; s < kSteps; ++s) {  // every checkpoint step
      const std::string prefix =
          temp_prefix("ca_reshard_matrix") + std::to_string(s);
      remove_set(prefix);
      ca_run_and_checkpoint(c, m.from, prefix, s);
      reshard_checkpoints(prefix, mesh, m.from, m.to);
      const state::State got = ca_resume_and_finish(c, m.to, prefix, kSteps);
      EXPECT_DOUBLE_EQ(
          state::State::max_abs_diff(ref, got, ref.interior()), 0.0)
          << m.what << " resharded at step " << s
          << " did not resume bit-for-bit";
      remove_set(prefix);
    }
  }
}

TEST(CheckpointReshard, CACarryPzCrossingReshardStaysInRoundOffClass) {
  // Changing pz regroups the z-collective partial sums, so the resumed
  // trajectory re-associates those folds: the carried rows move exactly,
  // but the forward run can only match to round-off.  Same bound the
  // core equivalence suite uses for decomposition invariance.
  const auto c = ca_cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  constexpr int kSteps = 4;
  const state::State ref = ca_reference(c, kSteps);

  struct Move {
    std::array<int, 3> from, to;
    const char* what;
  };
  const Move moves[] = {
      {{1, 2, 2}, {1, 1, 1}, "shrink 4 -> 1"},
      {{1, 2, 1}, {1, 1, 2}, "re-split y -> z"},
  };
  for (const Move& m : moves)
    for (int s = 1; s < kSteps; ++s) {
      const std::string prefix =
          temp_prefix("ca_reshard_zcross") + std::to_string(s);
      remove_set(prefix);
      ca_run_and_checkpoint(c, m.from, prefix, s);
      reshard_checkpoints(prefix, mesh, m.from, m.to);
      const state::State got = ca_resume_and_finish(c, m.to, prefix, kSteps);
      EXPECT_LT(state::State::max_abs_diff(ref, got, ref.interior()), 1e-8)
          << m.what << " resharded at step " << s
          << " left the round-off class";
      remove_set(prefix);
    }
}

TEST(CheckpointReshard, CACarryCrashMidReshardRollsForwardBitwise) {
  // A crash after the commit marker but before publish: recovery must
  // roll the carry-bearing set forward, and the resumed run must still
  // be bitwise.
  const auto c = ca_cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  constexpr int kSteps = 4, kAt = 2;
  const std::string prefix = temp_prefix("ca_reshard_crash");
  remove_set(prefix);
  ca_run_and_checkpoint(c, {1, 2, 1}, prefix, kAt);

  set_checkpoint_test_hook([](const std::string& event) {
    if (event == "committed")
      throw std::runtime_error("injected crash after commit");
  });
  EXPECT_THROW(reshard_checkpoints(prefix, mesh, {1, 2, 1}, {1, 1, 1}),
               std::runtime_error);
  set_checkpoint_test_hook(nullptr);
  ASSERT_TRUE(std::filesystem::exists(prefix + ".reshard"));
  EXPECT_TRUE(recover_resharded_checkpoints(prefix));

  const state::State got = ca_resume_and_finish(c, {1, 1, 1}, prefix, kSteps);
  const state::State ref = ca_reference(c, kSteps);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(ref, got, ref.interior()), 0.0)
      << "a reshard interrupted mid-publish lost carry bitwise-ness";
  remove_set(prefix);
}

TEST(CheckpointReshard, CACarryBelowMinimumBlockFailsLoudly) {
  // ny 16 over py 3 gives y blocks of 6/5/5, below the carry's declared
  // minimum of 3M + 1 = 7: genuinely unrepresentable, must fail loudly
  // and leave the old set intact.
  const auto c = ca_cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  const std::string prefix = temp_prefix("ca_reshard_toosmall");
  remove_set(prefix);
  ca_run_and_checkpoint(c, {1, 1, 1}, prefix, 1);
  EXPECT_THROW(reshard_checkpoints(prefix, mesh, {1, 1, 1}, {1, 3, 1}),
               std::runtime_error);
  // The failed reshard staged nothing: the old set still resumes.
  const state::State got = ca_resume_and_finish(c, {1, 1, 1}, prefix, 2);
  const state::State ref = ca_reference(c, 2);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(ref, got, ref.interior()), 0.0);
  remove_set(prefix);
}

TEST(CheckpointReshard, OpaqueOrMixedCarryFailsLoudly) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);

  // Opaque: a carry block with an unknown magic cannot be redistributed.
  {
    const std::string prefix = temp_prefix("reshard_opaque");
    remove_set(prefix);
    CarryWriter w;
    w.put_u64(0xDEADBEEFull);  // not kReshardableCarryMagic
    for (int r = 0; r < 2; ++r) {
      mesh::DomainDecomp d(mesh, {1, 2, 1}, {0, r, 0});
      state::State s(d.lnx(), d.lny(), d.lnz(), core::halos_for_depth(1));
      s.fill(1.0);
      write_checkpoint(checkpoint_path(prefix, r), mesh, d, s, 1, 120.0,
                       w.bytes());
    }
    EXPECT_THROW(reshard_checkpoints(prefix, mesh, {1, 2, 1}, {1, 1, 1}),
                 std::runtime_error);
    remove_set(prefix);
  }

  // Mixed: one rank with a carry, one without — ambiguous, refuse loudly.
  {
    const auto cc = ca_cfg();
    mesh::LatLonMesh m2(cc.nx, cc.ny, cc.nz);
    const std::string prefix = temp_prefix("reshard_mixed");
    remove_set(prefix);
    ca_run_and_checkpoint(cc, {1, 2, 1}, prefix, 1);
    // Rewrite rank 1's file without its carry block.
    mesh::DomainDecomp d(m2, {1, 2, 1}, {0, 1, 0});
    state::State s(d.lnx(), d.lny(), d.lnz(),
                   core::halos_for_depth(3 * cc.M));
    read_checkpoint(checkpoint_path(prefix, 1), m2, d, s);
    write_checkpoint(checkpoint_path(prefix, 1), m2, d, s, 1,
                     cc.dt_advect);
    EXPECT_THROW(reshard_checkpoints(prefix, m2, {1, 2, 1}, {1, 1, 1}),
                 std::runtime_error);
    remove_set(prefix);
  }
}

}  // namespace
}  // namespace ca::util
