// Checkpoint/restart: round-trip exactness, header validation, and a
// bitwise-identical restarted run across ranks.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "comm/runtime.hpp"
#include "core/exchange.hpp"
#include "core/original_core.hpp"
#include "util/checkpoint.hpp"

namespace ca::util {
namespace {

std::string temp_prefix(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("ca_agcm_") + tag))
      .string();
}

core::DycoreConfig cfg() {
  core::DycoreConfig c;
  c.nx = 24;
  c.ny = 16;
  c.nz = 8;
  c.M = 2;
  return c;
}

TEST(Checkpoint, RoundTripIsBitwise) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  for (int k = 0; k < c.nz; ++k)
    for (int j = 0; j < c.ny; ++j)
      for (int i = 0; i < c.nx; ++i) {
        a.u()(i, j, k) = 0.1 * i - 0.2 * j + k;
        a.v()(i, j, k) = std::sin(0.3 * i * j);
        a.phi()(i, j, k) = 1e-7 * i + 1e7 * k;
      }
  for (int j = 0; j < c.ny; ++j)
    for (int i = 0; i < c.nx; ++i) a.psa()(i, j) = 13.75 * i - j;

  const std::string path = temp_prefix("roundtrip") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 42, 12600.0);
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  const auto hdr = read_checkpoint(path, mesh, d, b);
  EXPECT_EQ(hdr.step, 42);
  EXPECT_DOUBLE_EQ(hdr.time_seconds, 12600.0);
  EXPECT_DOUBLE_EQ(state::State::max_abs_diff(a, b, a.interior()), 0.0);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongMesh) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(1.0);
  const std::string path = temp_prefix("wrongmesh") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 0, 0.0);

  mesh::LatLonMesh other(48, 16, 8);
  mesh::DomainDecomp od(other, {1, 1, 1}, {0, 0, 0});
  state::State b(48, 16, 8, core::halos_for_depth(1));
  EXPECT_THROW(read_checkpoint(path, other, od, b), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongDecomposition) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 2, 1}, {0, 0, 0});
  state::State a(c.nx, d.lny(), c.nz, core::halos_for_depth(1));
  a.fill(2.0);
  const std::string path = temp_prefix("wrongdecomp") + ".ckpt";
  write_checkpoint(path, mesh, d, a, 0, 0.0);

  mesh::DomainDecomp other(mesh, {1, 2, 1}, {0, 1, 0});  // other block
  state::State b(c.nx, other.lny(), c.nz, core::halos_for_depth(1));
  EXPECT_THROW(read_checkpoint(path, mesh, other, b), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbageAndTruncation) {
  const auto c = cfg();
  mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
  mesh::DomainDecomp d(mesh, {1, 1, 1}, {0, 0, 0});
  state::State b(c.nx, c.ny, c.nz, core::halos_for_depth(1));

  const std::string garbage = temp_prefix("garbage") + ".ckpt";
  {
    std::FILE* f = std::fopen(garbage.c_str(), "wb");
    std::fputs("not a checkpoint at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_checkpoint(garbage, mesh, d, b), std::runtime_error);
  std::remove(garbage.c_str());

  const std::string truncated = temp_prefix("trunc") + ".ckpt";
  state::State a(c.nx, c.ny, c.nz, core::halos_for_depth(1));
  a.fill(1.0);
  write_checkpoint(truncated, mesh, d, a, 0, 0.0);
  std::filesystem::resize_file(truncated,
                               std::filesystem::file_size(truncated) / 2);
  EXPECT_THROW(read_checkpoint(truncated, mesh, d, b), std::runtime_error);
  std::remove(truncated.c_str());

  EXPECT_THROW(read_checkpoint("/nonexistent/dir/x.ckpt", mesh, d, b),
               std::runtime_error);
}

TEST(Checkpoint, RestartedDistributedRunIsIdentical) {
  // run 4 steps == run 2, checkpoint, restore into fresh cores, run 2.
  const auto c = cfg();
  const std::string prefix = temp_prefix("restart");
  state::State straight, restarted;

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, ic);
    core.run(xi, 4);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) straight = std::move(g);
  });

  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    state::InitialOptions ic;
    ic.kind = state::InitialCondition::kPlanetaryWave;
    core.initialize(xi, ic);
    core.run(xi, 2);
    write_checkpoint(checkpoint_path(prefix, ctx.world_rank()),
                     mesh::LatLonMesh(c.nx, c.ny, c.nz), core.decomp(), xi,
                     2, 2 * c.dt_advect);
  });
  comm::Runtime::run(2, [&](comm::Context& ctx) {
    core::OriginalCore core(c, ctx, core::DecompScheme::kYZ, {1, 2, 1});
    auto xi = core.make_state();
    mesh::LatLonMesh mesh(c.nx, c.ny, c.nz);
    const auto hdr = read_checkpoint(
        checkpoint_path(prefix, ctx.world_rank()), mesh, core.decomp(), xi);
    EXPECT_EQ(hdr.step, 2);
    core.refresh_halos(xi, "restart");
    core.run(xi, 2);
    auto g = core::gather_global(core.op_context(), ctx, core.topology(),
                                 xi);
    if (ctx.world_rank() == 0) restarted = std::move(g);
    std::remove(checkpoint_path(prefix, ctx.world_rank()).c_str());
  });

  EXPECT_DOUBLE_EQ(
      state::State::max_abs_diff(straight, restarted, straight.interior()),
      0.0)
      << "a restart must be bitwise transparent";
}

}  // namespace
}  // namespace ca::util
