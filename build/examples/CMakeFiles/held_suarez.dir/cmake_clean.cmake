file(REMOVE_RECURSE
  "CMakeFiles/held_suarez.dir/held_suarez.cpp.o"
  "CMakeFiles/held_suarez.dir/held_suarez.cpp.o.d"
  "held_suarez"
  "held_suarez.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/held_suarez.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
