# Empty dependencies file for held_suarez.
# This may be replaced when dependencies are built.
