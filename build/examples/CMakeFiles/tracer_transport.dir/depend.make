# Empty dependencies file for tracer_transport.
# This may be replaced when dependencies are built.
