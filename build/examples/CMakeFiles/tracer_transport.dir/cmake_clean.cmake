file(REMOVE_RECURSE
  "CMakeFiles/tracer_transport.dir/tracer_transport.cpp.o"
  "CMakeFiles/tracer_transport.dir/tracer_transport.cpp.o.d"
  "tracer_transport"
  "tracer_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracer_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
