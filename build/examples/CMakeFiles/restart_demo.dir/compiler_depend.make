# Empty compiler generated dependencies file for restart_demo.
# This may be replaced when dependencies are built.
