# Empty dependencies file for ca_comparison.
# This may be replaced when dependencies are built.
