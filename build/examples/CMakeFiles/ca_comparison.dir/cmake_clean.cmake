file(REMOVE_RECURSE
  "CMakeFiles/ca_comparison.dir/ca_comparison.cpp.o"
  "CMakeFiles/ca_comparison.dir/ca_comparison.cpp.o.d"
  "ca_comparison"
  "ca_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
