# Empty dependencies file for bench_decomp_2d_vs_3d.
# This may be replaced when dependencies are built.
