file(REMOVE_RECURSE
  "CMakeFiles/bench_decomp_2d_vs_3d.dir/bench_decomp_2d_vs_3d.cpp.o"
  "CMakeFiles/bench_decomp_2d_vs_3d.dir/bench_decomp_2d_vs_3d.cpp.o.d"
  "bench_decomp_2d_vs_3d"
  "bench_decomp_2d_vs_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decomp_2d_vs_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
