file(REMOVE_RECURSE
  "CMakeFiles/bench_machine_sensitivity.dir/bench_machine_sensitivity.cpp.o"
  "CMakeFiles/bench_machine_sensitivity.dir/bench_machine_sensitivity.cpp.o.d"
  "bench_machine_sensitivity"
  "bench_machine_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_machine_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
