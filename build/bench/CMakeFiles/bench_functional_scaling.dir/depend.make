# Empty dependencies file for bench_functional_scaling.
# This may be replaced when dependencies are built.
