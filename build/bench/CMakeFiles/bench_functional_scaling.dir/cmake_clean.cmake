file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_scaling.dir/bench_functional_scaling.cpp.o"
  "CMakeFiles/bench_functional_scaling.dir/bench_functional_scaling.cpp.o.d"
  "bench_functional_scaling"
  "bench_functional_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
