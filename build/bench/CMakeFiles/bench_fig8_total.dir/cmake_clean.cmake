file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_total.dir/bench_fig8_total.cpp.o"
  "CMakeFiles/bench_fig8_total.dir/bench_fig8_total.cpp.o.d"
  "bench_fig8_total"
  "bench_fig8_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
