file(REMOVE_RECURSE
  "CMakeFiles/bench_comm.dir/bench_comm.cpp.o"
  "CMakeFiles/bench_comm.dir/bench_comm.cpp.o.d"
  "bench_comm"
  "bench_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
