file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_table.dir/bench_theory_table.cpp.o"
  "CMakeFiles/bench_theory_table.dir/bench_theory_table.cpp.o.d"
  "bench_theory_table"
  "bench_theory_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
