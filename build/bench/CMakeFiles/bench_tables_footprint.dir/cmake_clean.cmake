file(REMOVE_RECURSE
  "CMakeFiles/bench_tables_footprint.dir/bench_tables_footprint.cpp.o"
  "CMakeFiles/bench_tables_footprint.dir/bench_tables_footprint.cpp.o.d"
  "bench_tables_footprint"
  "bench_tables_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
