# Empty compiler generated dependencies file for bench_tables_footprint.
# This may be replaced when dependencies are built.
