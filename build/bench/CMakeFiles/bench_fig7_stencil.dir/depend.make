# Empty dependencies file for bench_fig7_stencil.
# This may be replaced when dependencies are built.
