file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ca.dir/bench_ablation_ca.cpp.o"
  "CMakeFiles/bench_ablation_ca.dir/bench_ablation_ca.cpp.o.d"
  "bench_ablation_ca"
  "bench_ablation_ca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
