# Empty compiler generated dependencies file for bench_ablation_ca.
# This may be replaced when dependencies are built.
