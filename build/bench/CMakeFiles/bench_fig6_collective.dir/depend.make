# Empty dependencies file for bench_fig6_collective.
# This may be replaced when dependencies are built.
