file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_collective.dir/bench_fig6_collective.cpp.o"
  "CMakeFiles/bench_fig6_collective.dir/bench_fig6_collective.cpp.o.d"
  "bench_fig6_collective"
  "bench_fig6_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
