# Empty compiler generated dependencies file for ca_agcm.
# This may be replaced when dependencies are built.
