
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collectives.cpp" "src/CMakeFiles/ca_agcm.dir/comm/collectives.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/comm/collectives.cpp.o.d"
  "/root/repo/src/comm/context.cpp" "src/CMakeFiles/ca_agcm.dir/comm/context.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/comm/context.cpp.o.d"
  "/root/repo/src/comm/mailbox.cpp" "src/CMakeFiles/ca_agcm.dir/comm/mailbox.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/comm/mailbox.cpp.o.d"
  "/root/repo/src/comm/runtime.cpp" "src/CMakeFiles/ca_agcm.dir/comm/runtime.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/comm/runtime.cpp.o.d"
  "/root/repo/src/comm/stats.cpp" "src/CMakeFiles/ca_agcm.dir/comm/stats.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/comm/stats.cpp.o.d"
  "/root/repo/src/comm/topology.cpp" "src/CMakeFiles/ca_agcm.dir/comm/topology.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/comm/topology.cpp.o.d"
  "/root/repo/src/core/ca_core.cpp" "src/CMakeFiles/ca_agcm.dir/core/ca_core.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/ca_core.cpp.o.d"
  "/root/repo/src/core/diagnostics.cpp" "src/CMakeFiles/ca_agcm.dir/core/diagnostics.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/diagnostics.cpp.o.d"
  "/root/repo/src/core/energetics.cpp" "src/CMakeFiles/ca_agcm.dir/core/energetics.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/energetics.cpp.o.d"
  "/root/repo/src/core/exchange.cpp" "src/CMakeFiles/ca_agcm.dir/core/exchange.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/exchange.cpp.o.d"
  "/root/repo/src/core/original_core.cpp" "src/CMakeFiles/ca_agcm.dir/core/original_core.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/original_core.cpp.o.d"
  "/root/repo/src/core/schedule_builders.cpp" "src/CMakeFiles/ca_agcm.dir/core/schedule_builders.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/schedule_builders.cpp.o.d"
  "/root/repo/src/core/serial_core.cpp" "src/CMakeFiles/ca_agcm.dir/core/serial_core.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/core/serial_core.cpp.o.d"
  "/root/repo/src/fft/dft.cpp" "src/CMakeFiles/ca_agcm.dir/fft/dft.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/fft/dft.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/CMakeFiles/ca_agcm.dir/fft/fft.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/fft/fft.cpp.o.d"
  "/root/repo/src/mesh/decomp.cpp" "src/CMakeFiles/ca_agcm.dir/mesh/decomp.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/mesh/decomp.cpp.o.d"
  "/root/repo/src/mesh/halo.cpp" "src/CMakeFiles/ca_agcm.dir/mesh/halo.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/mesh/halo.cpp.o.d"
  "/root/repo/src/mesh/latlon.cpp" "src/CMakeFiles/ca_agcm.dir/mesh/latlon.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/mesh/latlon.cpp.o.d"
  "/root/repo/src/mesh/sigma.cpp" "src/CMakeFiles/ca_agcm.dir/mesh/sigma.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/mesh/sigma.cpp.o.d"
  "/root/repo/src/ops/adaptation.cpp" "src/CMakeFiles/ca_agcm.dir/ops/adaptation.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/adaptation.cpp.o.d"
  "/root/repo/src/ops/advection.cpp" "src/CMakeFiles/ca_agcm.dir/ops/advection.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/advection.cpp.o.d"
  "/root/repo/src/ops/diffusion.cpp" "src/CMakeFiles/ca_agcm.dir/ops/diffusion.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/diffusion.cpp.o.d"
  "/root/repo/src/ops/filter.cpp" "src/CMakeFiles/ca_agcm.dir/ops/filter.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/filter.cpp.o.d"
  "/root/repo/src/ops/footprint.cpp" "src/CMakeFiles/ca_agcm.dir/ops/footprint.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/footprint.cpp.o.d"
  "/root/repo/src/ops/smoothing.cpp" "src/CMakeFiles/ca_agcm.dir/ops/smoothing.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/smoothing.cpp.o.d"
  "/root/repo/src/ops/tendency.cpp" "src/CMakeFiles/ca_agcm.dir/ops/tendency.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/tendency.cpp.o.d"
  "/root/repo/src/ops/tracer.cpp" "src/CMakeFiles/ca_agcm.dir/ops/tracer.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/tracer.cpp.o.d"
  "/root/repo/src/ops/vertical.cpp" "src/CMakeFiles/ca_agcm.dir/ops/vertical.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/ops/vertical.cpp.o.d"
  "/root/repo/src/perf/cost.cpp" "src/CMakeFiles/ca_agcm.dir/perf/cost.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/perf/cost.cpp.o.d"
  "/root/repo/src/perf/event_sim.cpp" "src/CMakeFiles/ca_agcm.dir/perf/event_sim.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/perf/event_sim.cpp.o.d"
  "/root/repo/src/perf/lower_bounds.cpp" "src/CMakeFiles/ca_agcm.dir/perf/lower_bounds.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/perf/lower_bounds.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/CMakeFiles/ca_agcm.dir/perf/machine.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/perf/machine.cpp.o.d"
  "/root/repo/src/perf/report.cpp" "src/CMakeFiles/ca_agcm.dir/perf/report.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/perf/report.cpp.o.d"
  "/root/repo/src/perf/schedule.cpp" "src/CMakeFiles/ca_agcm.dir/perf/schedule.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/perf/schedule.cpp.o.d"
  "/root/repo/src/physics/held_suarez.cpp" "src/CMakeFiles/ca_agcm.dir/physics/held_suarez.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/physics/held_suarez.cpp.o.d"
  "/root/repo/src/state/initial.cpp" "src/CMakeFiles/ca_agcm.dir/state/initial.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/state/initial.cpp.o.d"
  "/root/repo/src/state/state.cpp" "src/CMakeFiles/ca_agcm.dir/state/state.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/state/state.cpp.o.d"
  "/root/repo/src/state/stratification.cpp" "src/CMakeFiles/ca_agcm.dir/state/stratification.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/state/stratification.cpp.o.d"
  "/root/repo/src/state/transforms.cpp" "src/CMakeFiles/ca_agcm.dir/state/transforms.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/state/transforms.cpp.o.d"
  "/root/repo/src/state/vertical_interp.cpp" "src/CMakeFiles/ca_agcm.dir/state/vertical_interp.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/state/vertical_interp.cpp.o.d"
  "/root/repo/src/swe/shallow_water.cpp" "src/CMakeFiles/ca_agcm.dir/swe/shallow_water.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/swe/shallow_water.cpp.o.d"
  "/root/repo/src/util/checkpoint.cpp" "src/CMakeFiles/ca_agcm.dir/util/checkpoint.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/util/checkpoint.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/ca_agcm.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/util/config.cpp.o.d"
  "/root/repo/src/util/field_io.cpp" "src/CMakeFiles/ca_agcm.dir/util/field_io.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/util/field_io.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/ca_agcm.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/ca_agcm.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/ca_agcm.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
