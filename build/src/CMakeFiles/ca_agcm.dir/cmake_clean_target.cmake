file(REMOVE_RECURSE
  "libca_agcm.a"
)
