src/CMakeFiles/ca_agcm.dir/perf/machine.cpp.o: \
 /root/repo/src/perf/machine.cpp /usr/include/stdc-predef.h \
 /root/repo/src/perf/machine.hpp
