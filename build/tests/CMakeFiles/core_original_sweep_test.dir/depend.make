# Empty dependencies file for core_original_sweep_test.
# This may be replaced when dependencies are built.
