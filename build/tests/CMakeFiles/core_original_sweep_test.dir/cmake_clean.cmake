file(REMOVE_RECURSE
  "CMakeFiles/core_original_sweep_test.dir/core_original_sweep_test.cpp.o"
  "CMakeFiles/core_original_sweep_test.dir/core_original_sweep_test.cpp.o.d"
  "core_original_sweep_test"
  "core_original_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_original_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
