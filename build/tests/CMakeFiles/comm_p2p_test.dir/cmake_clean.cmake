file(REMOVE_RECURSE
  "CMakeFiles/comm_p2p_test.dir/comm_p2p_test.cpp.o"
  "CMakeFiles/comm_p2p_test.dir/comm_p2p_test.cpp.o.d"
  "comm_p2p_test"
  "comm_p2p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
