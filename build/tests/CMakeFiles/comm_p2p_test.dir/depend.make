# Empty dependencies file for comm_p2p_test.
# This may be replaced when dependencies are built.
