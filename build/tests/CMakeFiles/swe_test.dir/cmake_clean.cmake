file(REMOVE_RECURSE
  "CMakeFiles/swe_test.dir/swe_test.cpp.o"
  "CMakeFiles/swe_test.dir/swe_test.cpp.o.d"
  "swe_test"
  "swe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
