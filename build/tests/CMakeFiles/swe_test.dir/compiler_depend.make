# Empty compiler generated dependencies file for swe_test.
# This may be replaced when dependencies are built.
