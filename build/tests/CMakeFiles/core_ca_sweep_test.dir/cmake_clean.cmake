file(REMOVE_RECURSE
  "CMakeFiles/core_ca_sweep_test.dir/core_ca_sweep_test.cpp.o"
  "CMakeFiles/core_ca_sweep_test.dir/core_ca_sweep_test.cpp.o.d"
  "core_ca_sweep_test"
  "core_ca_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ca_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
