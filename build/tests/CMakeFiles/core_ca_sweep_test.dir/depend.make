# Empty dependencies file for core_ca_sweep_test.
# This may be replaced when dependencies are built.
