# Empty dependencies file for schedule_match_test.
# This may be replaced when dependencies are built.
