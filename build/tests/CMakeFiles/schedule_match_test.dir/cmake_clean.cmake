file(REMOVE_RECURSE
  "CMakeFiles/schedule_match_test.dir/schedule_match_test.cpp.o"
  "CMakeFiles/schedule_match_test.dir/schedule_match_test.cpp.o.d"
  "schedule_match_test"
  "schedule_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
