file(REMOVE_RECURSE
  "CMakeFiles/perf_event_sim_test.dir/perf_event_sim_test.cpp.o"
  "CMakeFiles/perf_event_sim_test.dir/perf_event_sim_test.cpp.o.d"
  "perf_event_sim_test"
  "perf_event_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_event_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
