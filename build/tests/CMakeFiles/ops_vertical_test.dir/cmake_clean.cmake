file(REMOVE_RECURSE
  "CMakeFiles/ops_vertical_test.dir/ops_vertical_test.cpp.o"
  "CMakeFiles/ops_vertical_test.dir/ops_vertical_test.cpp.o.d"
  "ops_vertical_test"
  "ops_vertical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_vertical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
