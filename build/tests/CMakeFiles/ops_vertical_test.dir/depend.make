# Empty dependencies file for ops_vertical_test.
# This may be replaced when dependencies are built.
