# Empty dependencies file for comm_topology_test.
# This may be replaced when dependencies are built.
