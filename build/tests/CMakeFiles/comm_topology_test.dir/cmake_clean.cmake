file(REMOVE_RECURSE
  "CMakeFiles/comm_topology_test.dir/comm_topology_test.cpp.o"
  "CMakeFiles/comm_topology_test.dir/comm_topology_test.cpp.o.d"
  "comm_topology_test"
  "comm_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
