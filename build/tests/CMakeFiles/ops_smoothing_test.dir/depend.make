# Empty dependencies file for ops_smoothing_test.
# This may be replaced when dependencies are built.
