file(REMOVE_RECURSE
  "CMakeFiles/ops_smoothing_test.dir/ops_smoothing_test.cpp.o"
  "CMakeFiles/ops_smoothing_test.dir/ops_smoothing_test.cpp.o.d"
  "ops_smoothing_test"
  "ops_smoothing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_smoothing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
