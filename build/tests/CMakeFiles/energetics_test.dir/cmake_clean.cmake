file(REMOVE_RECURSE
  "CMakeFiles/energetics_test.dir/energetics_test.cpp.o"
  "CMakeFiles/energetics_test.dir/energetics_test.cpp.o.d"
  "energetics_test"
  "energetics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energetics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
