# Empty dependencies file for energetics_test.
# This may be replaced when dependencies are built.
