file(REMOVE_RECURSE
  "CMakeFiles/core_parallel_equiv_test.dir/core_parallel_equiv_test.cpp.o"
  "CMakeFiles/core_parallel_equiv_test.dir/core_parallel_equiv_test.cpp.o.d"
  "core_parallel_equiv_test"
  "core_parallel_equiv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_parallel_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
