# Empty compiler generated dependencies file for core_serial_test.
# This may be replaced when dependencies are built.
