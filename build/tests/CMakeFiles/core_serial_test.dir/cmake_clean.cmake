file(REMOVE_RECURSE
  "CMakeFiles/core_serial_test.dir/core_serial_test.cpp.o"
  "CMakeFiles/core_serial_test.dir/core_serial_test.cpp.o.d"
  "core_serial_test"
  "core_serial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
