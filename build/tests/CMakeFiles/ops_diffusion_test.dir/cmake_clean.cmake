file(REMOVE_RECURSE
  "CMakeFiles/ops_diffusion_test.dir/ops_diffusion_test.cpp.o"
  "CMakeFiles/ops_diffusion_test.dir/ops_diffusion_test.cpp.o.d"
  "ops_diffusion_test"
  "ops_diffusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_diffusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
