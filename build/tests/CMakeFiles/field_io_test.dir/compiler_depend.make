# Empty compiler generated dependencies file for field_io_test.
# This may be replaced when dependencies are built.
