file(REMOVE_RECURSE
  "CMakeFiles/field_io_test.dir/field_io_test.cpp.o"
  "CMakeFiles/field_io_test.dir/field_io_test.cpp.o.d"
  "field_io_test"
  "field_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
