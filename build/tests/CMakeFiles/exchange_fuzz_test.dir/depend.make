# Empty dependencies file for exchange_fuzz_test.
# This may be replaced when dependencies are built.
