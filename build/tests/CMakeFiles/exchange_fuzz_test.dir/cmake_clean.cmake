file(REMOVE_RECURSE
  "CMakeFiles/exchange_fuzz_test.dir/exchange_fuzz_test.cpp.o"
  "CMakeFiles/exchange_fuzz_test.dir/exchange_fuzz_test.cpp.o.d"
  "exchange_fuzz_test"
  "exchange_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
