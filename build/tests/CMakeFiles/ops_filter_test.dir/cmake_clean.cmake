file(REMOVE_RECURSE
  "CMakeFiles/ops_filter_test.dir/ops_filter_test.cpp.o"
  "CMakeFiles/ops_filter_test.dir/ops_filter_test.cpp.o.d"
  "ops_filter_test"
  "ops_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
