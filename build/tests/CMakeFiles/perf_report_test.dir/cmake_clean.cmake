file(REMOVE_RECURSE
  "CMakeFiles/perf_report_test.dir/perf_report_test.cpp.o"
  "CMakeFiles/perf_report_test.dir/perf_report_test.cpp.o.d"
  "perf_report_test"
  "perf_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
