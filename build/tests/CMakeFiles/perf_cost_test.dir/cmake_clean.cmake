file(REMOVE_RECURSE
  "CMakeFiles/perf_cost_test.dir/perf_cost_test.cpp.o"
  "CMakeFiles/perf_cost_test.dir/perf_cost_test.cpp.o.d"
  "perf_cost_test"
  "perf_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
