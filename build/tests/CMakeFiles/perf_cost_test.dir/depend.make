# Empty dependencies file for perf_cost_test.
# This may be replaced when dependencies are built.
